"""Seeded, deterministic fault injection for chaos-testing the engine.

``repro.faults`` lets tests (and the CI chaos job) inject the failure
modes a long sweep actually meets — a crashed worker, a hung worker, a
truncated cache file, an ``OSError`` on cache write, a poisoned manifest
line — *deterministically*: every decision is a pure function of the
plan seed, the fault site and the subject key, so an injected-fault run
is reproducible bit-for-bit and can be asserted against a fault-free
reference.

Installation
------------
* **In-process** — :func:`install` / :func:`uninstall`, or the
  :func:`injected` context manager (what the chaos tests use).
* **Across worker processes** — the :data:`ENV_VAR` environment
  variable (``REPRO_FAULTS="seed=7,crash=0.2,corrupt=0.1"``); every
  process parses it lazily on its first fault check, so
  ``ProcessPoolExecutor`` workers inherit the plan with no initializer
  plumbing.

Fault model
-----------
A fault at ``(site, key)`` fires iff ``hash(seed|site|key)`` maps below
the site's rate **and** the attempt index is below ``fires`` (default
1) — i.e. faults are *transient* by default: they hit the first attempt
and vanish on retry, exactly the model the engine's retry ladder is
built for.  Set ``fires`` high to make faults sticky (testing retry
exhaustion and keep-going semantics).

*Hard* faults (a real ``os._exit`` crash, a real sleep-hang) only
trigger inside worker processes (``multiprocessing.parent_process()``
is not ``None``); in the main process the same plan raises
:class:`FaultInjected` instead, so an injected "crash" can never take
down the driver that is supposed to recover from it.

Every check is one module-global load and a branch when no plan is
installed, so the hooks live permanently in the engine paths.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Iterator

#: Environment variable workers (and CI) install fault plans through.
ENV_VAR = "REPRO_FAULTS"

#: Exit status of an injected hard worker crash (observability only).
CRASH_EXIT_STATUS = 13

#: Fault sites with a configurable rate, in plan-spec order.
RATE_FIELDS = ("crash", "hang", "corrupt", "write_os", "poison", "lease")


class FaultError(ValueError):
    """Raised on malformed fault-plan specs."""


class FaultInjected(RuntimeError):
    """The in-process form of an injected fault (classified transient)."""


@dataclass(frozen=True)
class FaultPlan:
    """One immutable, seeded fault schedule.

    ``crash`` / ``hang``
        Per-(job, attempt) probability of a worker crash (hard
        ``os._exit`` in workers, :class:`FaultInjected` in-process) or a
        worker hang of ``hang_s`` seconds (workers only).
    ``corrupt`` / ``write_os``
        Per-entry probability that a cache write is truncated on disk,
        or fails with an injected ``OSError``.
    ``poison``
        Per-entry probability that a garbage line is spliced into the
        JSONL manifest ahead of a real entry.
    ``lease``
        Per-job probability that a broker lease write is torn (the
        file truncated mid-document), modelling a worker dying inside
        the claim/heartbeat write itself.
    ``fires``
        How many attempts a (site, key) fault persists for; 1 (the
        default) models transient faults that a single retry heals.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    write_os: float = 0.0
    poison: float = 0.0
    lease: float = 0.0
    hang_s: float = 2.0
    fires: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise FaultError(f"seed must be an int, got {self.seed!r}")
        for name in RATE_FIELDS:
            rate = getattr(self, name)
            if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
                raise FaultError(
                    f"{name} must be a probability in [0, 1], got {rate!r}"
                )
        if not isinstance(self.hang_s, (int, float)) or self.hang_s < 0:
            raise FaultError(f"hang_s must be >= 0, got {self.hang_s!r}")
        if (
            not isinstance(self.fires, int)
            or isinstance(self.fires, bool)
            or self.fires < 1
        ):
            raise FaultError(f"fires must be an int >= 1, got {self.fires!r}")

    # -------------------------------------------------------------- #
    # spec round-trip
    # -------------------------------------------------------------- #
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``key=value,key=value`` spec (the :data:`ENV_VAR` form)."""
        known = {field.name: field.type for field in fields(cls)}
        values: dict[str, int | float] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            name, separator, raw = token.partition("=")
            name = name.strip()
            if not separator or name not in known:
                raise FaultError(
                    f"bad fault spec token {token!r}; known keys: "
                    f"{', '.join(sorted(known))}"
                )
            try:
                values[name] = (
                    int(raw) if name in ("seed", "fires") else float(raw)
                )
            except ValueError:
                raise FaultError(
                    f"bad fault spec value {raw!r} for {name!r}"
                ) from None
        return cls(**values)

    def describe(self) -> str:
        """The canonical spec string (``parse(describe())`` round-trips)."""
        parts = [f"seed={self.seed}"]
        parts.extend(
            f"{name}={getattr(self, name):g}"
            for name in RATE_FIELDS
            if getattr(self, name)
        )
        if self.hang:
            parts.append(f"hang_s={self.hang_s:g}")
        if self.fires != 1:
            parts.append(f"fires={self.fires}")
        return ",".join(parts)

    # -------------------------------------------------------------- #
    # decisions
    # -------------------------------------------------------------- #
    def fires_at(self, site: str, key: str, attempt: int = 0) -> bool:
        """Deterministic verdict: does ``site`` fault ``key`` at ``attempt``?

        Pure in (seed, site, key, attempt) — tests use it to predict an
        injected run's exact fault schedule.
        """
        if site not in RATE_FIELDS:
            raise FaultError(f"unknown fault site {site!r}; known: {RATE_FIELDS}")
        rate = getattr(self, site)
        if rate <= 0.0 or attempt >= self.fires:
            return False
        digest = hashlib.sha256(
            f"{self.seed}|{site}|{key}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0**64
        return draw < rate


#: Sentinel: the plan has not been resolved from the environment yet.
_UNRESOLVED = object()

#: Installed plan: a FaultPlan, None (explicitly off), or _UNRESOLVED.
_PLAN: object = _UNRESOLVED


def active() -> FaultPlan | None:
    """The currently installed plan (lazily parsed from :data:`ENV_VAR`)."""
    global _PLAN
    if _PLAN is _UNRESOLVED:
        spec = os.environ.get(ENV_VAR)
        _PLAN = FaultPlan.parse(spec) if spec else None
    return _PLAN  # type: ignore[return-value]


def install(plan: FaultPlan | str) -> FaultPlan:
    """Install a plan in this process (overrides the environment)."""
    global _PLAN
    resolved = FaultPlan.parse(plan) if isinstance(plan, str) else plan
    if not isinstance(resolved, FaultPlan):
        raise FaultError(f"expected a FaultPlan or spec string, got {plan!r}")
    _PLAN = resolved
    return resolved


def uninstall() -> None:
    """Remove any installed plan; :data:`ENV_VAR` is re-read on next use."""
    global _PLAN
    _PLAN = _UNRESOLVED


@contextmanager
def injected(plan: FaultPlan | str) -> Iterator[FaultPlan]:
    """Install ``plan`` for a ``with`` block (the chaos-test idiom)."""
    global _PLAN
    previous = _PLAN
    resolved = install(plan)
    try:
        yield resolved
    finally:
        _PLAN = previous


#: True while this process has declared itself a worker (see
#: :func:`mark_worker_process`) even without a multiprocessing parent.
_FORCED_WORKER = False


def _in_worker_process() -> bool:
    return _FORCED_WORKER or multiprocessing.parent_process() is not None


def mark_worker_process(flag: bool = True) -> None:
    """Declare this process a worker for hard-fault purposes (or undo it).

    Broker workers are plain subprocesses, not ``multiprocessing``
    children, so :func:`_in_worker_process` cannot see their parentage;
    ``cntcache worker`` calls this so injected crashes/hangs are *hard*
    (a real ``os._exit``) there too.  The flag is reversible — in-process
    tests that drive ``run_worker`` directly restore it in a ``finally``
    so the hosting test process never starts genuinely exiting on
    injected crashes.
    """
    global _FORCED_WORKER
    _FORCED_WORKER = bool(flag)


# ------------------------------------------------------------------ #
# hooks (called from the engine / worker / cache / manifest paths)
# ------------------------------------------------------------------ #
def on_job_start(key: str, attempt: int = 0) -> None:
    """Worker-side hook: maybe hang, maybe crash, before a job runs.

    Hard behaviours (a real sleep, a real ``os._exit``) fire only in
    worker processes; in the main process a scheduled crash raises
    :class:`FaultInjected` (transient) and a scheduled hang is skipped —
    an in-process hang could never be preempted, only suffered.
    """
    plan = active()
    if plan is None:
        return
    if plan.fires_at("hang", key, attempt) and _in_worker_process():
        time.sleep(plan.hang_s)
    if plan.fires_at("crash", key, attempt):
        if _in_worker_process():
            os._exit(CRASH_EXIT_STATUS)
        raise FaultInjected(
            f"injected worker crash for {key} (attempt {attempt})"
        )


def mangle_cache_write(key: str, data: str) -> str:
    """Cache-write hook: return ``data``, possibly truncated mid-document.

    A truncated prefix of a JSON object is never valid JSON, so the
    damage is guaranteed detectable (and quarantinable) on read.
    """
    plan = active()
    if plan is None or not plan.fires_at("corrupt", key):
        return data
    return data[: max(1, len(data) // 3)]


def maybe_cache_write_error(key: str) -> None:
    """Cache-write hook: maybe raise an injected ``OSError``."""
    plan = active()
    if plan is not None and plan.fires_at("write_os", key):
        raise OSError(f"injected cache-write failure for {key}")


def mangle_lease_write(key: str, data: str) -> str:
    """Lease-write hook: return ``data``, possibly truncated mid-document.

    A torn lease is indistinguishable from one left by a worker that
    died mid-write; readers must treat it as expired (claimable), which
    is exactly what the broker's steal path does.
    """
    plan = active()
    if plan is None or not plan.fires_at("lease", key):
        return data
    return data[: max(1, len(data) // 3)]


def poison_manifest_line(key: str) -> str | None:
    """Manifest hook: a garbage JSONL line to splice in, or ``None``."""
    plan = active()
    if plan is None or not plan.fires_at("poison", key):
        return None
    return '{"type": <injected manifest poison>'


__all__ = [
    "CRASH_EXIT_STATUS",
    "ENV_VAR",
    "RATE_FIELDS",
    "FaultError",
    "FaultInjected",
    "FaultPlan",
    "active",
    "injected",
    "install",
    "mangle_cache_write",
    "mangle_lease_write",
    "mark_worker_process",
    "maybe_cache_write_error",
    "on_job_start",
    "poison_manifest_line",
    "uninstall",
]

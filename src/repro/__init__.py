"""CNT-Cache: an Energy-Efficient Carbon Nanotube Cache with Adaptive Encoding.

Full reproduction of the DATE 2020 paper: the CNFET SRAM energy model, a
valued-trace cache simulator, the adaptive encoding architecture
(partitioned inversion codec + Algorithm 1 direction predictor + deferred
update FIFOs), baseline encoders, a 15-kernel workload suite, and the
experiment harness that regenerates every table and figure.

Quickstart (via the stable facade, :mod:`repro.api`)::

    from repro import CNTCacheConfig, api, get_workload

    run = get_workload("records").build("small", seed=7)
    cnt = api.simulate(workload=run, config=CNTCacheConfig(scheme="cnt"))
    base = api.simulate(workload=run, config=CNTCacheConfig(scheme="baseline"))
    print(f"saving: {cnt.stats.savings_vs(base.stats):.1%}")

See DESIGN.md for the system inventory, EXPERIMENTS.md for the
paper-vs-measured record of every experiment, docs/API.md for the facade
surface and docs/OBSERVABILITY.md for probes/manifests/profiling.
"""

import warnings

from repro import api
from repro.cnfet import BitEnergyModel, LeakageModel, Sram6TCell, render_table1
from repro.core import (
    CNTCacheConfig,
    EnergyStats,
    SCHEMES,
    preset,
    preset_names,
)
from repro.harness import compare_schemes, oracle_bound, replay, run_suite
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.obs import Obs
from repro.trace import Access, Op, read_trace, write_trace
from repro.workloads import WORKLOADS, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "api",
    "BitEnergyModel",
    "LeakageModel",
    "Sram6TCell",
    "render_table1",
    "CNTCache",
    "CNTCacheConfig",
    "EnergyStats",
    "Obs",
    "SCHEMES",
    "preset",
    "preset_names",
    "Access",
    "Op",
    "read_trace",
    "write_trace",
    "WORKLOADS",
    "get_workload",
    "workload_names",
    "replay",
    "compare_schemes",
    "run_suite",
    "oracle_bound",
    "EXPERIMENTS",
    "run_experiment",
    "__version__",
]


def __getattr__(name: str):
    # Deprecation shim: the top-level simulator class moved behind the
    # facade.  `repro.core.CNTCache` stays warning-free for internal and
    # test code; the convenience spelling nudges toward api.make_cache().
    if name == "CNTCache":
        warnings.warn(
            "importing CNTCache from the top-level 'repro' package is "
            "deprecated; construct simulators via repro.api.make_cache() "
            "(or import repro.core.CNTCache directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core import CNTCache

        return CNTCache
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

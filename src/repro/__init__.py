"""CNT-Cache: an Energy-Efficient Carbon Nanotube Cache with Adaptive Encoding.

Full reproduction of the DATE 2020 paper: the CNFET SRAM energy model, a
valued-trace cache simulator, the adaptive encoding architecture
(partitioned inversion codec + Algorithm 1 direction predictor + deferred
update FIFOs), baseline encoders, a 15-kernel workload suite, and the
experiment harness that regenerates every table and figure.

Quickstart::

    from repro import CNTCache, CNTCacheConfig, get_workload

    run = get_workload("records").build("small", seed=7)
    cnt = CNTCache(CNTCacheConfig(scheme="cnt"))
    cnt.preload_all(run.preloads)
    cnt.run(run.trace)
    base = CNTCache(CNTCacheConfig(scheme="baseline"))
    base.preload_all(run.preloads)
    base.run(run.trace)
    print(f"saving: {cnt.stats.savings_vs(base.stats):.1%}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every experiment.
"""

from repro.cnfet import BitEnergyModel, LeakageModel, Sram6TCell, render_table1
from repro.core import (
    CNTCache,
    CNTCacheConfig,
    EnergyStats,
    SCHEMES,
    preset,
    preset_names,
)
from repro.harness import compare_schemes, oracle_bound, replay, run_suite
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.trace import Access, Op, read_trace, write_trace
from repro.workloads import WORKLOADS, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "BitEnergyModel",
    "LeakageModel",
    "Sram6TCell",
    "render_table1",
    "CNTCache",
    "CNTCacheConfig",
    "EnergyStats",
    "SCHEMES",
    "preset",
    "preset_names",
    "Access",
    "Op",
    "read_trace",
    "write_trace",
    "WORKLOADS",
    "get_workload",
    "workload_names",
    "replay",
    "compare_schemes",
    "run_suite",
    "oracle_bound",
    "EXPERIMENTS",
    "run_experiment",
    "__version__",
]

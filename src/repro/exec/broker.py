"""The filesystem work broker: shared-cache distributed execution.

The ``broker`` exec backend turns one directory — typically on a
filesystem every participant can reach — into a crash-tolerant work
queue next to the content-addressed result cache::

    <root>/cache/                the shared ResultStore (source of truth)
    <root>/jobs/<fp>.json        claimable job records (describe() docs)
    <root>/leases/<fp>.json      lease files (O_EXCL claim, heartbeat renew)
    <root>/quarantine/<fp>.json  poison jobs (outlived K straight workers)

Lifecycle
---------
A *coordinator* (an :class:`~repro.exec.engine.ExecEngine` running
:func:`drain`) publishes one job record per unresolved job, optionally
spawns a local worker fleet, and polls the shared cache for results.  A
*worker* (:func:`run_worker`, the ``cntcache worker`` subcommand) claims
a job by creating its lease file with ``O_CREAT | O_EXCL`` — the
filesystem arbitrates the race — renews the lease's deadline from a
heartbeat thread while the job simulates, writes the result into the
shared cache, and removes job record and lease.

Crash recovery is lease-based and **at-least-once**: a worker that is
SIGKILLed mid-job stops heartbeating, its lease deadline passes, and the
next claimer *steals* the expired lease (an ``os.replace`` to a private
name, so exactly one stealer wins) and re-claims the job at the next
lease *generation*.  Double execution is safe — results are
content-addressed, so the second writer publishes a byte-identical
document — lost work is not, and the generation counter is the fuse: a
job whose leases expire ``max_generations`` times is *quarantined* as a
poison job (it keeps killing or outliving its workers) and surfaces as
a permanent :class:`~repro.resilience.PoisonJobError` failure at the
coordinator, riding the existing :class:`~repro.resilience.FailureRecord`
machinery.

Deadlines are wall-clock (the one ``time.time`` sanctioned in
``repro.exec``): lease files are compared across *processes and hosts*,
where monotonic clocks don't travel.  TTL slack is expected to absorb
NTP-level skew; renewal only ever extends a deadline.  Nothing here
feeds measurement results — leases are pure coordination.

Resume is free: job records and the cache live on disk, so a restarted
coordinator republishes (idempotently) only what its own resolve
pipeline still misses, adopts what workers finished in the meantime as
cache hits, and the drain continues where it stopped.
"""

from __future__ import annotations

import json
import math
import os
import re
import socket
import subprocess
import sys
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import repro.exec.worker as _worker
from repro import faults
from repro.exec.job import SimJob, job_from_payload
from repro.exec.store import (
    STALE_LEASE_TTL_S,
    EngineCounters,
    ResultStore,
    sweep_stale,
)
from repro.obs import probe
from repro.obs.telemetry import TelemetryWriter, span_for, telemetry_dir
from repro.resilience import (
    PoisonJobError,
    ResilienceConfig,
    classify_transient,
)
from repro.schemas import BROKER

#: Version tag of the broker's job-record/lease/quarantine layout.
BROKER_SCHEMA = BROKER.tag


class BrokerError(RuntimeError):
    """Raised on invalid broker configuration or an unrecoverable drain."""


def _wall_now() -> float:
    """Wall-clock seconds; lease deadlines cross process/host boundaries
    where monotonic clocks are meaningless.  Coordination only — never a
    measurement input."""
    return time.time()  # lint: disable=D001


def default_worker_id() -> str:
    """A stable, filesystem-safe worker identity: ``<hostname>-<pid>``.

    Deterministic in the process (no uuid/random — lint D002): two
    workers can only collide by sharing a hostname *and* a pid, i.e. by
    being the same process.
    """
    raw = f"{socket.gethostname()}-{os.getpid()}"
    return re.sub(r"[^A-Za-z0-9._-]", "-", raw)


@dataclass(frozen=True)
class BrokerConfig:
    """One broker directory and its coordination policy.

    ``lease_ttl_s``
        How long a claim lives without renewal.  The crash-detection
        latency: a SIGKILLed worker's job becomes stealable one TTL
        after its last heartbeat.
    ``heartbeat_s``
        Renewal interval (default ``lease_ttl_s / 3`` — two missed
        beats of slack before expiry).
    ``poll_s``
        Idle poll interval for both coordinator and workers.
    ``max_generations``
        Lease generations before a job is quarantined as poison
        (default ``resilience.max_retries + 1`` — the retry budget,
        transferred).
    ``spawn`` / ``worker_respawns``
        Whether :func:`drain` runs a local fleet of ``engine.jobs``
        worker subprocesses, and how many replacement workers it may
        start after crashes before giving up.
    ``idle_timeout_s``
        How long a worker with nothing claimable waits before exiting
        cleanly.
    """

    root: str | Path
    lease_ttl_s: float = 30.0
    heartbeat_s: float | None = None
    poll_s: float = 0.2
    max_generations: int | None = None
    spawn: bool = True
    worker_respawns: int = 32
    idle_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if not str(self.root):
            raise BrokerError("root must be a non-empty directory path")
        if (
            not isinstance(self.lease_ttl_s, (int, float))
            or self.lease_ttl_s <= 0
        ):
            raise BrokerError(
                f"lease_ttl_s must be > 0, got {self.lease_ttl_s!r}"
            )
        if not isinstance(self.poll_s, (int, float)) or self.poll_s <= 0:
            raise BrokerError(f"poll_s must be > 0, got {self.poll_s!r}")
        if (
            not isinstance(self.idle_timeout_s, (int, float))
            or self.idle_timeout_s <= 0
        ):
            raise BrokerError(
                f"idle_timeout_s must be > 0, got {self.idle_timeout_s!r}"
            )
        if not isinstance(self.spawn, bool):
            raise BrokerError(f"spawn must be a bool, got {self.spawn!r}")
        if self.heartbeat_s is not None and not (
            isinstance(self.heartbeat_s, (int, float))
            and 0 < self.heartbeat_s < self.lease_ttl_s
        ):
            raise BrokerError(
                f"heartbeat_s must be in (0, lease_ttl_s), got {self.heartbeat_s!r}"
            )
        if self.max_generations is not None and (
            not isinstance(self.max_generations, int)
            or isinstance(self.max_generations, bool)
            or self.max_generations < 1
        ):
            raise BrokerError(
                f"max_generations must be an int >= 1, got {self.max_generations!r}"
            )
        if (
            not isinstance(self.worker_respawns, int)
            or isinstance(self.worker_respawns, bool)
            or self.worker_respawns < 0
        ):
            raise BrokerError(
                f"worker_respawns must be an int >= 0, got {self.worker_respawns!r}"
            )

    @property
    def cache_dir(self) -> Path:
        """The shared result store — the broker's single source of truth."""
        return Path(self.root) / "cache"

    @property
    def jobs_dir(self) -> Path:
        """Claimable job records, one ``<fingerprint>.json`` each."""
        return Path(self.root) / "jobs"

    @property
    def leases_dir(self) -> Path:
        """Live claims: one lease file per job being worked on."""
        return Path(self.root) / "leases"

    @property
    def quarantine_dir(self) -> Path:
        """Poison-job records (jobs that outlived the generation fuse)."""
        return Path(self.root) / "quarantine"

    @property
    def reclaims_dir(self) -> Path:
        """Durable reclaim evidence: one record per stolen expired lease.

        The stealing worker writes it, the coordinator consumes it — a
        reclaim is counted exactly once even when the re-executed job
        finishes between two coordinator polls (a generation bump alone
        is unobservable for sub-poll jobs).
        """
        return Path(self.root) / "reclaims"

    @property
    def heartbeat_interval(self) -> float:
        """Lease renewal period (explicit, or a third of the TTL)."""
        return (
            self.heartbeat_s
            if self.heartbeat_s is not None
            else self.lease_ttl_s / 3.0
        )

    def generations(self, resilience: ResilienceConfig) -> int:
        """The poison fuse: lease generations before quarantine."""
        if self.max_generations is not None:
            return self.max_generations
        return resilience.max_retries + 1


@dataclass(frozen=True)
class Lease:
    """One worker's claim on one job, for one generation."""

    fingerprint: str
    worker: str
    generation: int
    deadline: float
    renewals: int = 0

    @property
    def expired(self) -> bool:
        """True once the deadline passed: the claim is stealable."""
        return _wall_now() > self.deadline

    def to_dict(self) -> dict:
        """JSON-ready lease document; inverse of :meth:`from_dict`."""
        return {
            "schema": BROKER_SCHEMA,
            "fingerprint": self.fingerprint,
            "worker": self.worker,
            "generation": self.generation,
            "deadline": self.deadline,
            "renewals": self.renewals,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Lease":
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != BROKER_SCHEMA
        ):
            raise BrokerError(f"not a lease document: {payload!r}")
        try:
            return cls(
                fingerprint=str(payload["fingerprint"]),
                worker=str(payload["worker"]),
                generation=int(payload["generation"]),
                deadline=float(payload["deadline"]),
                renewals=int(payload["renewals"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise BrokerError(f"malformed lease: {error}") from None


@dataclass(frozen=True)
class Claim:
    """A successfully acquired job: what :meth:`BrokerStore.claim` returns.

    ``trace_id``/``span_id`` are the correlation ids the coordinator
    stamped into the job record (``None`` for records published before
    telemetry, or by a coordinator running without it); the worker
    propagates them into its telemetry frames and the result's trace
    snapshot.  Pure observability — they never enter the job identity.
    """

    job: SimJob
    lease: Lease
    trace_id: str | None = None
    span_id: str | None = None


@dataclass
class WorkerStats:
    """What one :func:`run_worker` loop did (its exit summary)."""

    claimed: int = 0
    executed: int = 0
    failures: int = 0
    quarantined: int = 0
    reclaims: int = 0
    renewals: int = 0

    def describe(self) -> str:
        """One human-readable exit line for the worker CLI."""
        text = f"{self.claimed} claimed, {self.executed} executed"
        extras = [
            f"{value} {name}"
            for name, value in (
                ("failed attempt(s)", self.failures),
                ("quarantined", self.quarantined),
                ("reclaimed", self.reclaims),
                ("heartbeat renewal(s)", self.renewals),
            )
            if value
        ]
        if extras:
            text += ", " + ", ".join(extras)
        return text


class BrokerStore:
    """Filesystem operations on one broker directory (both roles use it).

    Every mutation follows the cache's atomicity discipline: documents
    are published with tmp + ``os.replace``, claims with
    ``O_CREAT | O_EXCL``, steals with ``os.replace`` to a private name —
    each a single atomic filesystem arbitration, no locks.
    """

    def __init__(
        self,
        config: BrokerConfig,
        resilience: ResilienceConfig | None = None,
        counters: EngineCounters | None = None,
        progress: Callable[[str], None] | None = None,
        cache: ResultStore | None = None,
        telemetry: TelemetryWriter | None = None,
    ) -> None:
        self.config = config
        self.resilience = (
            ResilienceConfig() if resilience is None else resilience
        )
        self.counters = EngineCounters() if counters is None else counters
        self.progress = progress
        #: Optional telemetry writer: store-level lifecycle events
        #: (reclaims, quarantines) are announced through it.
        self.telemetry = telemetry
        self.cache = (
            ResultStore(config.cache_dir, self.counters, progress)
            if cache is None
            else cache
        )
        self.max_generations = config.generations(self.resilience)
        #: fingerprint -> (trace_id, span_id) read off published records,
        #: so claims carry the coordinator's correlation ids.
        self.trace_context: dict = {}
        #: Fingerprints this process decided never to claim again
        #: (foreign code versions, quarantined jobs) — stops the claim
        #: scan from re-parsing them every poll.
        self._skip: set[str] = set()
        for directory in (
            config.cache_dir,
            config.jobs_dir,
            config.leases_dir,
            config.quarantine_dir,
            config.reclaims_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # -------------------------------------------------------------- #
    # paths
    # -------------------------------------------------------------- #
    def job_path(self, fingerprint: str) -> Path:
        """Where the job record for ``fingerprint`` lives."""
        return self.config.jobs_dir / f"{fingerprint}.json"

    def lease_path(self, fingerprint: str) -> Path:
        """Where the lease for ``fingerprint`` lives."""
        return self.config.leases_dir / f"{fingerprint}.json"

    def quarantine_path(self, fingerprint: str) -> Path:
        """Where the quarantine record for ``fingerprint`` lives."""
        return self.config.quarantine_dir / f"{fingerprint}.json"

    # -------------------------------------------------------------- #
    # coordinator side: publish
    # -------------------------------------------------------------- #
    def publish(self, jobs: list[SimJob], trace_id: str | None = None) -> int:
        """Publish claimable records for ``jobs``; returns how many are new.

        Idempotent: an existing record (same content-addressed name) is
        left untouched, so a resumed coordinator republishes nothing a
        previous drain already posted.  Quarantined jobs are skipped —
        they already failed permanently.  With a ``trace_id``, every new
        record is stamped with it plus the job's derived span id
        (:func:`repro.obs.telemetry.span_for`) so workers propagate the
        coordinator's correlation ids; records are still claimable by
        fleets that ignore the fields.
        """
        published = 0
        for job in jobs:
            fingerprint = job.fingerprint
            path = self.job_path(fingerprint)
            if path.exists() or self.quarantine_path(fingerprint).exists():
                continue
            record = {
                "schema": BROKER_SCHEMA,
                "fingerprint": fingerprint,
                "label": job.label,
                "job": job.describe(),
            }
            if trace_id is not None:
                record["trace_id"] = trace_id
                record["span_id"] = span_for(trace_id, fingerprint)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(
                json.dumps(record, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, path)
            published += 1
        self.counters.published += published
        if published:
            probe.counter("exec.broker_published", published)
        return published

    # -------------------------------------------------------------- #
    # worker side: claim / renew / complete
    # -------------------------------------------------------------- #
    def pending(self) -> list[str]:
        """Fingerprints with a published job record, sorted for fairness."""
        try:
            names = sorted(
                path.stem
                for path in self.config.jobs_dir.glob("*.json")
                if path.stem not in self._skip
            )
        except OSError:
            return []
        return names

    def load_job(self, fingerprint: str) -> SimJob | None:
        """Reconstruct the published job, or ``None`` when unusable.

        A record written by a different code/schema version is skipped
        permanently for this process (another, matching fleet may own
        it); a vanished record (completed by someone else) is a plain
        ``None``.
        """
        path = self.job_path(fingerprint)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            if record.get("schema") != BROKER_SCHEMA:
                raise BrokerError(f"foreign job record schema in {path.name}")
            job = job_from_payload(record["job"])
            if job.fingerprint != fingerprint:
                raise BrokerError(f"job record {path.name} hash mismatch")
            trace_id = record.get("trace_id")
            if trace_id is not None:
                self.trace_context[fingerprint] = (
                    str(trace_id),
                    record.get("span_id"),
                )
            return job
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, BrokerError) as error:
            self._skip.add(fingerprint)
            if self.progress is not None:
                self.progress(
                    f"[broker] skipping unusable job record "
                    f"{fingerprint[:12]}: {error}"
                )
            return None

    def read_lease(self, fingerprint: str) -> Lease | None:
        """The current lease, or ``None`` (absent, torn, or foreign)."""
        return self._read_lease_file(self.lease_path(fingerprint))

    @staticmethod
    def _read_lease_file(path: Path) -> Lease | None:
        try:
            return Lease.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except (OSError, ValueError, BrokerError):
            # Absent, torn mid-write, or not a lease at all: every one
            # of these means "no live claim" to a reader.
            return None

    def claim(self, worker_id: str) -> Claim | None:
        """Try to acquire one pending job; ``None`` when nothing claimable.

        Scans published records in fingerprint order.  For each: a live
        lease means someone is working on it; an expired/torn lease is
        *stolen* (renamed to a private name — exactly one stealer wins
        the ``os.replace`` race) and the job re-claimed at the next
        generation; a generation past the poison fuse quarantines the
        job instead.  The acquisition itself is an ``O_CREAT | O_EXCL``
        create of the lease file.
        """
        for fingerprint in self.pending():
            claim = self._try_claim(fingerprint, worker_id)
            if claim is not None:
                return claim
        return None

    def _try_claim(self, fingerprint: str, worker_id: str) -> Claim | None:
        lease_path = self.lease_path(fingerprint)
        prior = self._read_lease_file(lease_path)
        if prior is not None and not prior.expired:
            return None  # live claim: someone's working on it
        generation = 1
        if lease_path.exists():
            stolen = self._steal(lease_path, worker_id)
            if stolen is None:
                return None  # lost the steal race
            lost_worker, stolen_generation = stolen
            generation = stolen_generation + 1
            self.counters.reclaims += 1
            probe.counter("exec.reclaims")
            self._record_reclaim(
                fingerprint, generation, lost_worker, worker_id
            )
            if self.progress is not None:
                self.progress(
                    f"[broker] reclaimed expired lease "
                    f"{fingerprint[:12]} from {lost_worker} "
                    f"(generation {generation})"
                )
        job = self.load_job(fingerprint)
        if job is None:
            return None  # completed elsewhere, or unusable (now skipped)
        if self.cache.read(job) is not None:
            # Someone finished it but died before retiring the record.
            self.finish_job(fingerprint)
            return None
        if generation > self.max_generations:
            self.quarantine_job(
                job,
                generation - 1,
                f"{generation - 1} consecutive lease generation(s) expired "
                f"without a result (poison fuse: {self.max_generations})",
            )
            return None
        lease = Lease(
            fingerprint=fingerprint,
            worker=worker_id,
            generation=generation,
            deadline=_wall_now() + self.config.lease_ttl_s,
        )
        if not self._create_lease(lease):
            return None  # lost the claim race
        self.counters.claims += 1
        probe.counter("exec.lease_acquired")
        trace_id, span_id = self.trace_context.get(fingerprint, (None, None))
        return Claim(
            job=job, lease=lease, trace_id=trace_id, span_id=span_id
        )

    def _steal(self, lease_path: Path, worker_id: str) -> tuple[str, int] | None:
        """Atomically take an expired lease; ``(lost worker, generation)``.

        ``os.replace`` to a name private to this worker: of N concurrent
        stealers exactly one succeeds, the rest get ``FileNotFoundError``.
        A torn (unparseable) stolen lease counts as generation 1 by an
        unknown worker — the ladder restarts conservatively rather than
        never.
        """
        private = lease_path.with_name(
            f"{lease_path.name}.steal.{worker_id}"
        )
        try:
            os.replace(lease_path, private)
        except OSError:
            return None
        stolen = self._read_lease_file(private)
        try:
            private.unlink(missing_ok=True)
        except OSError:  # lint: disable=R007
            pass  # leftover steal litter; the janitor TTL-sweeps it
        if stolen is None:
            return ("unknown", 1)
        return (stolen.worker, stolen.generation)

    def _record_reclaim(
        self, fingerprint: str, generation: int, lost_worker: str, by: str
    ) -> None:
        """Persist one reclaim event for the coordinator to consume."""
        record = {
            "schema": BROKER_SCHEMA,
            "fingerprint": fingerprint,
            "generation": generation,
            "lost_worker": lost_worker,
            "by": by,
        }
        path = self.config.reclaims_dir / f"{fingerprint}.{generation}.json"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(
                json.dumps(record, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, path)
        except OSError:  # lint: disable=R007
            pass  # counting evidence only; the reclaim itself happened
        if self.telemetry is not None:
            self.telemetry.lifecycle(
                "reclaim",
                fingerprint=fingerprint,
                generation=generation,
                lost_worker=lost_worker,
                by=by,
            )

    def consume_reclaims(self) -> list[dict]:
        """Take (and delete) every readable reclaim record, exactly once.

        The unlink is the claim on the record: whoever removes it counts
        it, so two coordinators on one broker directory never double
        count an event.
        """
        records = []
        for path in sorted(self.config.reclaims_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):  # lint: disable=R007
                continue  # torn mid-write; picked up next poll
            if record.get("schema") != BROKER_SCHEMA:
                continue
            try:
                path.unlink()
            except OSError:  # lint: disable=R007
                continue  # consumed by someone else, or counted next poll
            records.append(record)
        return records

    def _create_lease(self, lease: Lease) -> bool:
        """``O_CREAT | O_EXCL`` acquisition; False when someone beat us."""
        data = faults.mangle_lease_write(
            lease.fingerprint, json.dumps(lease.to_dict(), sort_keys=True)
        )
        try:
            fd = os.open(
                self.lease_path(lease.fingerprint),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(data)
        return True

    def renew(self, claim: Claim) -> bool:
        """Heartbeat: extend the claim's deadline; False when it was lost.

        Read-check-then-replace: if the on-disk lease no longer names
        this worker at this generation, a stealer decided we were dead
        and owns the job now — the renewal is refused and the caller
        should treat its own execution as a benign duplicate (results
        are content-addressed, so finishing anyway is safe).
        """
        current = self.read_lease(claim.lease.fingerprint)
        if current is None or (
            current.worker != claim.lease.worker
            or current.generation != claim.lease.generation
        ):
            return False
        renewed = Lease(
            fingerprint=claim.lease.fingerprint,
            worker=claim.lease.worker,
            generation=claim.lease.generation,
            deadline=_wall_now() + self.config.lease_ttl_s,
            renewals=current.renewals + 1,
        )
        path = self.lease_path(claim.lease.fingerprint)
        data = faults.mangle_lease_write(
            renewed.fingerprint, json.dumps(renewed.to_dict(), sort_keys=True)
        )
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_text(data, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            return False
        self.counters.lease_renewals += 1
        probe.counter("exec.lease_renewals")
        return True

    def fail_attempt(self, claim: Claim) -> None:
        """Give up this attempt (transient error): expire our own lease.

        The generation is *kept* — rewriting the lease with an
        already-past deadline makes the job immediately stealable while
        preserving the poison-fuse ladder, exactly as if this worker
        had crashed.
        """
        path = self.lease_path(claim.lease.fingerprint)
        expired = Lease(
            fingerprint=claim.lease.fingerprint,
            worker=claim.lease.worker,
            generation=claim.lease.generation,
            deadline=_wall_now() - 1.0,
            renewals=claim.lease.renewals,
        )
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_text(
                json.dumps(expired.to_dict(), sort_keys=True),
                encoding="utf-8",
            )
            os.replace(tmp, path)
        except OSError:  # lint: disable=R007
            pass  # worst case the lease expires by TTL instead

    def complete(self, claim: Claim) -> None:
        """Retire a finished job: remove its record, then our lease."""
        self.finish_job(claim.lease.fingerprint)
        try:
            self.lease_path(claim.lease.fingerprint).unlink(missing_ok=True)
        except OSError:  # lint: disable=R007
            pass  # lease already stolen/removed; harmless
        probe.counter("exec.lease_released")

    def finish_job(self, fingerprint: str) -> None:
        """Remove a job record (its result is in the shared cache)."""
        try:
            self.job_path(fingerprint).unlink(missing_ok=True)
        except OSError:  # lint: disable=R007
            pass  # raced with another finisher: the job is gone either way

    # -------------------------------------------------------------- #
    # quarantine (poison jobs)
    # -------------------------------------------------------------- #
    def quarantine_job(self, job: SimJob, generation: int, reason: str) -> None:
        """Mark ``job`` poison: persist the evidence, retire the record.

        Pure storage — callers do their own counting, so a record is
        never double-counted when both a worker and the coordinator
        watchdog reach the same verdict.
        """
        record = {
            "schema": BROKER_SCHEMA,
            "fingerprint": job.fingerprint,
            "label": job.label,
            "generation": generation,
            "reason": reason,
            "job": job.describe(),
        }
        path = self.quarantine_path(job.fingerprint)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(
                json.dumps(record, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, path)
        except OSError:  # lint: disable=R007
            pass  # the coordinator watchdog will re-reach the verdict
        self.finish_job(job.fingerprint)
        try:
            self.lease_path(job.fingerprint).unlink(missing_ok=True)
        except OSError:  # lint: disable=R007
            pass  # racing stealer holds it; it will hit the quarantine too
        self._skip.add(job.fingerprint)
        if self.telemetry is not None:
            self.telemetry.lifecycle(
                "quarantine",
                fingerprint=job.fingerprint,
                label=job.label,
                generation=generation,
                reason=reason,
            )
        if self.progress is not None:
            self.progress(
                f"[broker] quarantined poison job {job.label}: {reason}"
            )

    def quarantined(self) -> list[dict]:
        """Every readable quarantine record (coordinator consumption)."""
        records = []
        for path in sorted(self.config.quarantine_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):  # lint: disable=R007
                continue  # torn mid-write; the writer retries or TTL reaps
            if record.get("schema") == BROKER_SCHEMA:
                records.append(record)
        return records

    # -------------------------------------------------------------- #
    # hygiene
    # -------------------------------------------------------------- #
    def sweep(self) -> None:
        """Janitor pass over coordination litter (steal/tmp/stale residue).

        Stale reclaim records (a coordinator that died long before this
        one resumed) are swept too — they are counting evidence, and
        evidence an hour old describes a different run.
        """
        swept = sweep_stale(
            self.config.leases_dir, "*.steal.*", STALE_LEASE_TTL_S
        )
        swept += sweep_stale(
            self.config.leases_dir, "*.tmp.*", STALE_LEASE_TTL_S
        )
        swept += sweep_stale(
            self.config.reclaims_dir, "*.tmp.*", STALE_LEASE_TTL_S
        )
        swept += sweep_stale(
            self.config.reclaims_dir, "*.json", STALE_LEASE_TTL_S
        )
        self.counters.lease_swept += swept


class _Heartbeat(threading.Thread):
    """Renews one claim's lease every ``interval`` while the job runs.

    Stops renewing when the lease is stolen (we were presumed dead) or
    once a ``budget_s`` wall budget is exhausted — the hang protection:
    a worker stuck inside a job stops refreshing its claim, the lease
    expires, and the fleet reclaims the job even though this process
    never returns.
    """

    def __init__(
        self,
        store: BrokerStore,
        claim: Claim,
        interval: float,
        budget_s: float | None = None,
        telemetry: TelemetryWriter | None = None,
    ) -> None:
        super().__init__(
            daemon=True,
            name=f"lease-heartbeat-{claim.lease.fingerprint[:8]}",
        )
        self.store = store
        self.claim = claim
        self.interval = interval
        self.budget_s = budget_s
        self.telemetry = telemetry
        self._done = threading.Event()

    def run(self) -> None:
        started = time.monotonic()
        while not self._done.wait(self.interval):
            if (
                self.budget_s is not None
                and time.monotonic() - started >= self.budget_s
            ):
                return  # over budget: let the lease lapse (hang guard)
            if not self.store.renew(self.claim):
                return  # stolen: the job belongs to someone else now
            if self.telemetry is not None:
                # The telemetry heartbeat rides the lease renewal: this
                # thread is the only thing running while a long job
                # simulates, so it is what keeps the dashboard live.
                self.telemetry.heartbeat(
                    "running",
                    job=self.claim.job.label,
                    kind=self.claim.job.kind,
                    generation=self.claim.lease.generation,
                )

    def stop(self) -> None:
        self._done.set()
        self.join(timeout=5.0)


def run_worker(
    broker: BrokerConfig | str | Path,
    worker_id: str | None = None,
    resilience: ResilienceConfig | None = None,
    idle_timeout_s: float | None = None,
    max_jobs: int | None = None,
    progress: Callable[[str], None] | None = None,
    hard_faults: bool = False,
    stop: threading.Event | None = None,
) -> WorkerStats:
    """One worker loop: claim, heartbeat, execute, publish, repeat.

    Exits cleanly after ``idle_timeout_s`` with nothing claimable, after
    ``max_jobs`` claims, or when ``stop`` is set (the CLI wires SIGTERM
    to it for graceful drain).  ``hard_faults=True`` marks the process a
    fault-injection *worker* (see :func:`repro.faults.mark_worker_process`)
    so injected crashes really ``os._exit`` — reversible, for in-process
    tests.

    Error handling transfers the engine's taxonomy: a transient error
    expires this worker's own lease in place (same fingerprint ladder a
    crash would climb), a permanent error quarantines the job
    immediately — no other worker should die discovering the same bug.
    """
    config = broker if isinstance(broker, BrokerConfig) else BrokerConfig(root=broker)
    resilience = ResilienceConfig() if resilience is None else resilience
    identity = worker_id or default_worker_id()
    # Workers announce themselves on the broker's telemetry bus.  The
    # declared interval is the lease heartbeat period — during a long
    # job the renewal thread is what keeps frames flowing, so that is
    # the largest gap a live worker should ever show.
    telemetry = TelemetryWriter(
        telemetry_dir(config.root),
        identity=identity,
        role="worker",
        declared_interval_s=max(1.0, config.heartbeat_interval),
    )
    store = BrokerStore(
        config, resilience=resilience, progress=progress, telemetry=telemetry
    )
    idle_budget = (
        config.idle_timeout_s if idle_timeout_s is None else idle_timeout_s
    )
    stats = WorkerStats()
    accesses_total = 0
    #: Per-job fJ totals, order-safely summed at report time (D005).
    energy_parts: list[float] = []
    busy_s = 0.0

    def gauges() -> dict:
        rate = accesses_total / busy_s if busy_s > 0 else 0.0
        return {
            "jobs_done": stats.executed,
            "claimed": stats.claimed,
            "failures": stats.failures,
            "accesses": accesses_total,
            "accesses_per_s": round(rate, 1),
            "energy_fj": math.fsum(energy_parts),
        }

    if hard_faults:
        faults.mark_worker_process(True)
    try:
        reclaims_before = store.counters.reclaims
        idle_since = time.monotonic()
        telemetry.heartbeat("idle", force=True, **gauges())
        while stop is None or not stop.is_set():
            claim = store.claim(identity)
            if claim is None:
                if time.monotonic() - idle_since >= idle_budget:
                    break
                telemetry.heartbeat("idle", **gauges())
                time.sleep(config.poll_s)
                continue
            idle_since = time.monotonic()
            stats.claimed += 1
            telemetry.lifecycle(
                "claim",
                fingerprint=claim.lease.fingerprint,
                label=claim.job.label,
                kind=claim.job.kind,
                generation=claim.lease.generation,
                trace_id=claim.trace_id,
                span_id=claim.span_id,
            )
            telemetry.heartbeat(
                "running",
                force=True,
                job=claim.job.label,
                kind=claim.job.kind,
                generation=claim.lease.generation,
                **gauges(),
            )
            if progress is not None:
                progress(
                    f"[worker {identity}] claimed {claim.job.label} "
                    f"(generation {claim.lease.generation})"
                )
            heartbeat = _Heartbeat(
                store,
                claim,
                config.heartbeat_interval,
                budget_s=resilience.job_timeout_s,
                telemetry=telemetry,
            )
            heartbeat.start()
            try:
                result = _worker.execute_job(
                    claim.job, attempt=claim.lease.generation - 1
                )
            # Sanctioned broad catch: classified below into the same
            # transient/permanent taxonomy the local backends use.
            except Exception as error:  # lint: disable=R007
                heartbeat.stop()
                stats.failures += 1
                telemetry.lifecycle(
                    "fail",
                    fingerprint=claim.lease.fingerprint,
                    label=claim.job.label,
                    generation=claim.lease.generation,
                    error=type(error).__name__,
                    transient=classify_transient(error),
                    trace_id=claim.trace_id,
                    span_id=claim.span_id,
                )
                if classify_transient(error):
                    store.fail_attempt(claim)
                    if progress is not None:
                        progress(
                            f"[worker {identity}] transient "
                            f"{type(error).__name__} on {claim.job.label}; "
                            "lease released for retry"
                        )
                else:
                    stats.quarantined += 1
                    store.quarantine_job(
                        claim.job,
                        claim.lease.generation,
                        f"permanent {type(error).__name__}: {error}",
                    )
            else:
                heartbeat.stop()
                if claim.trace_id is not None and result.trace:
                    # Correlation ids ride the trace snapshot (transport
                    # observability, excluded from the canonical
                    # measurement) so a fleet's traces stitch into one
                    # timeline.
                    result.trace.setdefault("trace_id", claim.trace_id)
                    result.trace.setdefault("span_id", claim.span_id)
                store.cache.write(claim.job, result)
                store.complete(claim)
                stats.executed += 1
                accesses_total += result.accesses
                busy_s += result.wall_s
                if result.stats is not None:
                    energy_parts.append(result.stats.total_fj)
                telemetry.lifecycle(
                    "finish",
                    fingerprint=claim.lease.fingerprint,
                    label=claim.job.label,
                    kind=claim.job.kind,
                    scheme=(
                        None
                        if claim.job.config is None
                        else claim.job.config.scheme
                    ),
                    generation=claim.lease.generation,
                    wall_s=result.wall_s,
                    accesses=result.accesses,
                    energy_fj=(
                        None
                        if result.stats is None
                        else result.stats.total_fj
                    ),
                    trace_id=claim.trace_id,
                    span_id=claim.span_id,
                )
                if probe.ENABLED:
                    probe.gauge("worker.jobs_done", stats.executed)
                    probe.gauge("worker.claimed", stats.claimed)
                    probe.gauge("worker.failures", stats.failures)
            if max_jobs is not None and stats.claimed >= max_jobs:
                break
    finally:
        if hard_faults:
            faults.mark_worker_process(False)
        telemetry.lifecycle("exit", claimed=stats.claimed, executed=stats.executed)
        telemetry.heartbeat("exited", force=True, **gauges())
        telemetry.close()
    stats.reclaims = store.counters.reclaims - reclaims_before
    stats.renewals = store.counters.lease_renewals
    return stats


@dataclass
class _Fleet:
    """The coordinator's local worker subprocesses (``spawn=True``)."""

    config: BrokerConfig
    resilience: ResilienceConfig
    count: int
    progress: Callable[[str], None] | None = None
    respawns_left: int = 0
    procs: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.respawns_left = self.config.worker_respawns
        for _ in range(max(1, self.count)):
            self.procs.append(self._spawn())

    def _spawn(self):
        # Spawned workers must outlast any single lease expiry, or an
        # idle fleet could exit while a crashed peer's lease runs down.
        idle = max(
            self.config.idle_timeout_s, 3.0 * self.config.lease_ttl_s + 5.0
        )
        command = [
            sys.executable,
            "-m",
            "repro.harness.cli",
            "worker",
            "--broker",
            str(self.config.root),
            "--lease-ttl",
            str(self.config.lease_ttl_s),
            "--poll",
            str(self.config.poll_s),
            "--idle-timeout",
            str(idle),
            "--max-generations",
            str(self.config.generations(self.resilience)),
        ]
        if self.resilience.job_timeout_s is not None:
            command += ["--job-timeout", str(self.resilience.job_timeout_s)]
        # Workers inherit the parent environment untouched (REPRO_FAULTS
        # and PYTHONPATH included); stdout is discarded so worker chatter
        # can never interleave with the coordinator's rendered output.
        return subprocess.Popen(command, stdout=subprocess.DEVNULL)

    def alive(self) -> int:
        return sum(1 for proc in self.procs if proc.poll() is None)

    def maintain(self, active_jobs: int) -> None:
        """Respawn dead workers while work remains (within budget).

        A worker that died with a nonzero status (injected crash,
        SIGKILL) *and* a clean idle exit both get replaced while jobs
        are unresolved — each replacement spends one respawn.  When the
        whole fleet is dead and the budget is gone, the drain cannot
        finish: raise rather than poll forever.
        """
        if active_jobs <= 0:
            return
        for index, proc in enumerate(self.procs):
            if proc.poll() is None:
                continue
            if self.respawns_left > 0:
                self.respawns_left -= 1
                if self.progress is not None and proc.returncode != 0:
                    self.progress(
                        f"[broker] worker exited with status "
                        f"{proc.returncode}; respawning "
                        f"({self.respawns_left} respawn(s) left)"
                    )
                self.procs[index] = self._spawn()
        if self.alive() == 0 and self.respawns_left <= 0:
            raise BrokerError(
                f"every spawned worker died and the respawn budget is "
                f"exhausted with {active_jobs} job(s) unresolved"
            )

    def shutdown(self) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()  # SIGTERM: workers drain gracefully
        for proc in self.procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)


def drain(engine, pending: list[SimJob]) -> None:
    """Coordinator loop: publish ``pending``, watch the fleet converge.

    The engine's resolve pipeline already consumed memo and cache hits,
    so ``pending`` is exactly the unfinished remainder — which makes
    coordinator restart a resume for free.  The loop: adopt results as
    they land in the shared cache; convert quarantine records into
    permanent failures; observe lease generations as the liveness
    watchdog (a generation bump = a reclaim from a lost worker); keep
    the local fleet staffed.
    """
    config = engine.broker
    if config is None:
        raise BrokerError("broker backend selected without a BrokerConfig")
    if engine.store is None:
        raise BrokerError("broker engine has no result store")
    telemetry = getattr(engine, "telemetry", None)
    store = BrokerStore(
        config,
        resilience=engine.resilience,
        counters=engine.counters,
        progress=engine.progress,
        cache=engine.store,
        telemetry=telemetry,
    )
    store.sweep()
    published = store.publish(
        pending, trace_id=getattr(engine, "trace_id", None)
    )
    if engine.obs is not None:
        engine.obs.record_broker(
            "publish", jobs=len(pending), published=published
        )
    if telemetry is not None:
        telemetry.lifecycle(
            "publish", jobs=len(pending), published=published
        )
    unresolved: dict[str, SimJob] = {job.fingerprint: job for job in pending}
    lost_workers: set[str] = set()

    def account_reclaims() -> None:
        """Fold every durable reclaim record into the engine, once each."""
        for record in store.consume_reclaims():
            engine.counters.reclaims += 1
            probe.counter("exec.reclaims")
            lost = record.get("lost_worker") or "unknown"
            if lost not in lost_workers:
                lost_workers.add(lost)
                engine.counters.workers_lost += 1
                probe.counter("exec.workers_lost")
            if engine.obs is not None:
                engine.obs.record_broker(
                    "reclaim",
                    fingerprint=record.get("fingerprint"),
                    generation=record.get("generation"),
                    lost_worker=lost,
                    by=record.get("by"),
                )
    fleet = (
        _Fleet(
            config,
            engine.resilience,
            count=min(engine.jobs, len(pending)),
            progress=engine.progress,
        )
        if config.spawn
        else None
    )
    try:
        while unresolved:
            progressed = False
            # 1. Adopt whatever the fleet finished into the engine.
            for fingerprint, job in list(unresolved.items()):
                result = store.cache.read(job)
                if result is None:
                    continue
                result.source = "broker"
                engine._adopt(job, result)
                store.finish_job(fingerprint)
                del unresolved[fingerprint]
                progressed = True
            if not unresolved:
                break
            # 2. Quarantine records become permanent structured failures.
            for record in store.quarantined():
                fingerprint = record.get("fingerprint")
                job = unresolved.pop(fingerprint, None)  # type: ignore[arg-type]
                if job is None:
                    continue
                progressed = True
                engine.counters.quarantined += 1
                probe.counter("exec.quarantined")
                if engine.obs is not None:
                    engine.obs.record_broker(
                        "quarantine",
                        fingerprint=fingerprint,
                        label=record.get("label"),
                        generation=record.get("generation"),
                        reason=record.get("reason"),
                    )
                attempts = int(
                    record.get("generation") or store.max_generations
                )
                engine._fail(
                    job,
                    PoisonJobError(
                        record.get("reason") or "poison job quarantined"
                    ),
                    attempts,
                )
            # 3. Liveness accounting: every stolen expired lease left a
            #    durable reclaim record — consume each exactly once.
            account_reclaims()
            # 4. Watchdog: a lease expired at the poison fuse is
            #    quarantined here in case every worker is dead and
            #    nobody else will reach the verdict.
            for fingerprint in list(unresolved):
                lease = store.read_lease(fingerprint)
                if lease is None:
                    continue
                if (
                    lease.expired
                    and lease.generation >= store.max_generations
                ):
                    store.quarantine_job(
                        unresolved[fingerprint],
                        lease.generation,
                        f"{lease.generation} consecutive lease "
                        f"generation(s) expired without a result "
                        f"(poison fuse: {store.max_generations})",
                    )
                    progressed = True  # consumed by step 2 next round
            if fleet is not None:
                fleet.maintain(active_jobs=len(unresolved))
            if telemetry is not None and telemetry.due:
                depth = len(store.pending())
                probe.gauge("broker.queue_depth", depth)
                telemetry.heartbeat(
                    "draining",
                    queue_depth=depth,
                    unresolved=len(unresolved),
                    reclaims=engine.counters.reclaims,
                    quarantined=engine.counters.quarantined,
                )
            if not progressed:
                time.sleep(config.poll_s)
        # Final accounting pass: the loop exits the moment the last job
        # is adopted, which can leave that job's reclaim record unread.
        account_reclaims()
        if engine.obs is not None:
            engine.obs.record_broker(
                "drain",
                jobs=len(pending),
                reclaims=engine.counters.reclaims,
                workers_lost=engine.counters.workers_lost,
                quarantined=engine.counters.quarantined,
            )
        if telemetry is not None:
            telemetry.lifecycle(
                "drain",
                jobs=len(pending),
                reclaims=engine.counters.reclaims,
                workers_lost=engine.counters.workers_lost,
                quarantined=engine.counters.quarantined,
            )
            telemetry.heartbeat(
                "draining", force=True, queue_depth=0, unresolved=0
            )
    finally:
        if fleet is not None:
            fleet.shutdown()


__all__ = [
    "BROKER_SCHEMA",
    "BrokerConfig",
    "BrokerError",
    "BrokerStore",
    "Claim",
    "Lease",
    "WorkerStats",
    "default_worker_id",
    "drain",
    "run_worker",
]

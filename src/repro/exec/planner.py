"""Job planning: dedupe the union of everything the experiments asked for.

The planner is deliberately dumb — jobs are pure values with content
hashes, so planning is just order-preserving deduplication plus
bookkeeping.  All the cleverness (what *counts* as the same job) lives in
:mod:`repro.exec.job`'s normalization.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.exec.job import SimJob


@dataclass
class Plan:
    """A deduplicated execution plan.

    ``requested`` is every job as submitted (duplicates included);
    ``unique`` keeps the first occurrence of each fingerprint in
    submission order, so execution order — and therefore every downstream
    table — is deterministic.
    """

    requested: list[SimJob] = field(default_factory=list)
    unique: list[SimJob] = field(default_factory=list)

    @property
    def deduplicated(self) -> int:
        """How many requested jobs were folded into an earlier twin."""
        return len(self.requested) - len(self.unique)

    def describe(self) -> str:
        """One-line summary for logs/progress."""
        return (
            f"planned {len(self.requested)} job(s), {len(self.unique)} "
            f"unique ({self.deduplicated} deduplicated)"
        )


class Planner:
    """Collects job requests and produces a deduplicated :class:`Plan`."""

    def __init__(self) -> None:
        self._requested: list[SimJob] = []
        self._unique: dict[str, SimJob] = {}

    def add(self, jobs: Iterable[SimJob]) -> None:
        """Request jobs (duplicates welcome — that is the point)."""
        for job in jobs:
            self._requested.append(job)
            self._unique.setdefault(job.fingerprint, job)

    def plan(self) -> Plan:
        """The deduplicated plan, in first-seen submission order."""
        return Plan(
            requested=list(self._requested),
            unique=list(self._unique.values()),
        )


def plan_jobs(jobs: Iterable[SimJob]) -> Plan:
    """Convenience: one-shot plan of an iterable of jobs."""
    planner = Planner()
    planner.add(jobs)
    return planner.plan()

"""Job execution: the one place a :class:`SimJob` turns into numbers.

:func:`execute_job` runs in whatever process calls it — the engine uses
it directly for serial execution and ships :func:`execute_payload` to
``ProcessPoolExecutor`` workers for parallel execution.  Workloads (and
L1-filtered streams, which are equally expensive to build) are memoized
per process, so a sweep of N configs over one workload builds its trace
once per worker, not N times.

Everything here is deterministic: traces are rebuilt from
(name, size, seed), the simulator is seeded from the config, and results
travel as JSON-exact payloads — a worker-process result is bit-identical
to an in-process run (asserted by ``cntcache selftest``).
"""

from __future__ import annotations

import hashlib
import time
from collections.abc import Iterable

from repro import faults
from repro.exec.job import SimJob
from repro.exec.result import ExecResult
from repro.obs import probe, trace
from repro.workloads.program import WorkloadRun, get_workload

#: Per-process workload memo: (name, size, seed) -> built run.
_RUNS: dict[tuple[str, str, int], WorkloadRun] = {}

#: Per-process L1-filtered stream memo (streams cost a full L1 replay).
_STREAMS: dict[tuple, list] = {}


def build_run(name: str, size: str, seed: int) -> WorkloadRun:
    """Build (or reuse) the deterministic trace of one workload."""
    key = (name, size, seed)
    run = _RUNS.get(key)
    if run is None:
        with probe.timer("phase.workload_build"):
            run = get_workload(name).build(size, seed=seed)
        _RUNS[key] = run
        probe.counter("workload.builds")
    else:
        probe.counter("workload.memo_hits")
    return run


def clear_memos() -> None:
    """Drop the per-process workload/stream memos (tests, memory pressure)."""
    _RUNS.clear()
    _STREAMS.clear()


def preload_digest(preloads: Iterable[tuple[int, bytes]]) -> str:
    """Short content hash of a preload image (job observability/integrity)."""
    digest = hashlib.sha256()
    for addr, payload in sorted(preloads):
        digest.update(addr.to_bytes(8, "little"))
        digest.update(len(payload).to_bytes(4, "little"))
        digest.update(payload)
    return digest.hexdigest()[:16]


# --------------------------------------------------------------------- #
# kind dispatch
# --------------------------------------------------------------------- #
def _execute_workload(job: SimJob) -> ExecResult:
    from repro.harness.runner import replay

    run = build_run(job.workload, job.size, job.seed)
    assert job.config is not None
    sim = replay(job.config, run.trace, run.preloads, backend=job.backend)
    return ExecResult(
        job=job,
        stats=sim.stats,
        values={
            "checksum": run.checksum,
            "preload_digest": preload_digest(run.preloads),
        },
    )


def _execute_oracle(job: SimJob) -> ExecResult:
    from repro.harness.oracle import oracle_bound

    run = build_run(job.workload, job.size, job.seed)
    assert job.config is not None
    bound = oracle_bound(job.config, run.trace, run.preloads)
    return ExecResult(job=job, values={"oracle_fj": bound, "accesses": run.stats.accesses})


def _execute_l2(job: SimJob) -> ExecResult:
    from repro.harness.multilevel import l1_filtered_stream
    from repro.harness.runner import replay

    run = build_run(job.workload, job.size, job.seed)
    assert job.config is not None
    geometry = dict(job.params)
    stream_key = (job.workload, job.size, job.seed, job.params)
    stream = _STREAMS.get(stream_key)
    if stream is None:
        # The substrate-L1 replay is memoized infrastructure, not the
        # measurement; pause probes so cache.* counters stay per-job
        # deterministic whatever the worker-process topology.
        with probe.timer("phase.l1_filter"), probe.paused():
            stream = l1_filtered_stream(
                run.trace,
                run.preloads,
                l1_size=geometry["l1_size"],
                l1_assoc=geometry["l1_assoc"],
                line_size=geometry["l1_line_size"],
            )
        _STREAMS[stream_key] = stream
    values = {
        "stream_accesses": len(stream),
        "stream_writes": sum(1 for access in stream if access.is_write),
    }
    if not stream:
        return ExecResult(job=job, stats=None, values=values)
    sim = replay(job.config, stream, run.preloads, backend=job.backend)
    return ExecResult(job=job, stats=sim.stats, values=values)


def _execute_audit(job: SimJob) -> ExecResult:
    from repro.analysis.accuracy import audit_predictions
    from repro.api import make_cache

    run = build_run(job.workload, job.size, job.seed)
    assert job.config is not None
    audit = audit_predictions(
        make_cache(config=job.config, backend=job.backend),
        run.trace,
        run.preloads,
    )
    values = {
        name: value
        for name, value in audit.as_dict().items()
        if name != "accuracy"  # derived; recomputed from the counters
    }
    values["correct"] = audit.correct
    values["accesses"] = run.stats.accesses
    return ExecResult(job=job, values=values)


def _execute_trace(job: SimJob) -> ExecResult:
    run = build_run(job.workload, job.size, job.seed)
    stats = run.stats
    return ExecResult(
        job=job,
        values={
            "accesses": stats.accesses,
            "reads": stats.reads,
            "writes": stats.writes,
            "bytes_read": stats.bytes_read,
            "bytes_written": stats.bytes_written,
            "one_bits": stats.one_bits,
            "total_bits": stats.total_bits,
            "distinct_lines": stats.distinct_lines,
            "footprint_bytes": stats.footprint_bytes,
            "checksum": run.checksum,
            "preload_digest": preload_digest(run.preloads),
        },
    )


_DISPATCH = {
    "workload": _execute_workload,
    "oracle": _execute_oracle,
    "l2": _execute_l2,
    "audit": _execute_audit,
    "trace": _execute_trace,
}


def execute_job(job: SimJob, attempt: int = 0) -> ExecResult:
    """Run one job in this process; wall time is measured around the kind.

    With probes enabled, the job runs inside a nested capture scope and
    the snapshot rides home on :attr:`ExecResult.obs` — the payload-dict
    transport that makes per-job counters process-safe.  Tracing works
    the same way: a per-job :class:`~repro.obs.trace.TraceSink` captures
    the access/span events and its tagged snapshot rides home on
    :attr:`ExecResult.trace`.  ``attempt`` is the engine's retry index;
    it only feeds the fault-injection hook (:mod:`repro.faults`), never
    the measurement.
    """
    faults.on_job_start(job.fingerprint, attempt)
    started = time.perf_counter()
    with probe.capture() as scope:
        with trace.capture() as sink:
            with trace.span(f"job.{job.kind}", label=job.label):
                with probe.timer(f"phase.{job.kind}"):
                    result = _DISPATCH[job.kind](job)
        if sink is not None:
            snapshot = sink.snapshot()
            snapshot["label"] = job.label
            snapshot["job_kind"] = job.kind
            snapshot["workload"] = job.workload
            snapshot["fingerprint"] = job.fingerprint
            snapshot["scheme"] = None if job.config is None else job.config.scheme
            result.trace = snapshot
            probe.gauge("trace.events", len(snapshot["events"]))
            probe.gauge("trace.dropped", snapshot["dropped"])
    result.wall_s = time.perf_counter() - started
    if scope is not None:
        result.obs = scope.snapshot()
    return result


def init_worker_observability(
    probe_on: bool,
    trace_on: bool = False,
    every: int = 1,
    capacity: int | None = None,
) -> None:
    """Pool initializer: arm the probe/trace switchboards in a fresh worker.

    Module globals do not survive ``ProcessPoolExecutor`` spawn, so the
    engine ships the parent's switchboard state as ``initargs`` and this
    runs once per worker process before any job executes.
    """
    if probe_on:
        probe.enable_in_worker()
    if trace_on:
        trace.enable_in_worker(every=every, capacity=capacity)


def execute_payload(job: SimJob, attempt: int = 0) -> dict:
    """Pool entry point: run a job, return its serialized payload.

    Returning the payload (not the :class:`ExecResult`) forces every
    parallel result through the same lossless serialization as the disk
    cache, so parallel and serial runs cannot diverge silently.
    """
    return execute_job(job, attempt=attempt).payload()

"""Execution backends: how a batch of pending jobs actually runs.

The engine's resolve pipeline (dedup -> memo -> cache) is backend
independent; only the final step — executing whatever the cache could
not serve — varies.  This registry names those strategies, mirroring
:mod:`repro.backends` (the *simulation* backend registry) in shape:

``local-serial``
    In-process execution with bounded retries; what ``jobs=1`` always
    did, and the degradation target every other backend falls back to.
``local-pool``
    ``ProcessPoolExecutor`` rounds with retries, per-job timeouts, pool
    rebuilds and serial fallback; what ``jobs > 1`` always did.
``broker``
    The distributed mode (:mod:`repro.exec.broker`): the engine becomes
    a coordinator publishing claimable job records into a filesystem
    broker directory, and any number of ``cntcache worker`` processes
    drain them through the shared result cache.

Every backend routes outcomes through the same engine helpers
(``_store`` / ``_fail`` / ``_should_retry``), so the resilience policy
(:class:`repro.resilience.ResilienceConfig`) and the failure taxonomy
transfer unchanged — a retry is a retry whether the attempt died in a
pool worker or on a leased broker worker.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exec.result import ExecResult
from repro.exec.worker import (
    execute_job,
    execute_payload,
    init_worker_observability,
)
from repro.obs import probe, trace
from repro.resilience import backoff_delay

if TYPE_CHECKING:
    from repro.exec.engine import ExecEngine
    from repro.exec.job import SimJob


class ExecBackendError(ValueError):
    """Raised on unknown exec-backend lookups."""


@dataclass(frozen=True)
class ExecBackendInfo:
    """One registered execution backend.

    ``name``
        Registry key (``--exec-backend`` on the CLI).
    ``summary``
        One line on the execution strategy.
    ``factory``
        Zero-argument callable building the backend instance.
    ``distributed``
        True when execution leaves this process tree (results are
        adopted from a shared store rather than transported in-memory).
    """

    name: str
    summary: str
    factory: Callable[[], "ExecBackend"]
    distributed: bool = False


class ExecBackend:
    """Protocol: execute ``pending`` jobs on behalf of ``engine``.

    Implementations must resolve *every* pending job — into
    ``engine._memo`` via ``engine._store``/``engine._adopt``, or into
    ``engine._failed`` via ``engine._fail`` (keep-going) — or raise.
    """

    name = "abstract"

    def execute(self, engine: "ExecEngine", pending: "list[SimJob]") -> None:
        """Resolve every job in ``pending`` through ``engine``."""
        raise NotImplementedError


class LocalSerialBackend(ExecBackend):
    """In-process execution with bounded retries on transient errors."""

    name = "local-serial"

    def execute(self, engine: "ExecEngine", pending: "list[SimJob]") -> None:
        """Run each job in this process, retrying transient failures."""
        config = engine.resilience
        for job in pending:
            attempt = 0
            while True:
                try:
                    result = execute_job(job, attempt=attempt)
                # Sanctioned broad catch: every error is classified and
                # either retried or surfaced as a structured failure.
                except Exception as error:  # lint: disable=R007
                    if engine._should_retry(job, attempt, error):
                        attempt += 1
                        time.sleep(
                            backoff_delay(config, job.fingerprint, attempt)
                        )
                        continue
                    engine._fail(job, error, attempt + 1)
                    break
                engine._store(job, result)
                break


class LocalPoolBackend(ExecBackend):
    """Worker-pool execution: retries, timeouts, rebuilds, fallback.

    Jobs run in rounds.  A round submits everything still unresolved
    and harvests results in submission order; a failure classified
    transient re-queues its job for the next round (up to
    ``max_retries``).  A timeout or a ``BrokenProcessPool`` *condemns*
    the pool — finished futures are still harvested, the rest re-queue,
    and the pool is rebuilt (``pool_rebuilds`` times) before the engine
    degrades to serial in-process execution for whatever remains.
    """

    name = "local-pool"

    def execute(self, engine: "ExecEngine", pending: "list[SimJob]") -> None:
        """Run the jobs in worker-pool rounds (see the class docstring)."""
        config = engine.resilience
        workers = min(engine.jobs, len(pending))
        # Force-enable probes/tracing in the workers iff they are on
        # here; per-job captures come back inside the result payloads.
        initializer = initargs = None
        if probe.ENABLED or trace.ACTIVE:
            initializer = init_worker_observability
            initargs = (probe.ENABLED, trace.ACTIVE, trace.EVERY, trace.CAPACITY)
        attempts: dict[str, int] = {job.fingerprint: 0 for job in pending}
        remaining = list(pending)
        rebuilds_left = config.pool_rebuilds
        pool = self._make_pool(workers, initializer, initargs)
        try:
            while remaining:
                batch, remaining = remaining, []
                condemned = False
                done_at: dict[int, float] = {}
                queued_at = time.perf_counter()
                futures = [
                    pool.submit(execute_payload, job, attempts[job.fingerprint])
                    for job in batch
                ]
                for future in futures:
                    future.add_done_callback(
                        lambda f, d=done_at: d.setdefault(
                            id(f), time.perf_counter()
                        )
                    )
                for job, future in zip(batch, futures):
                    if condemned and not future.done():
                        # The pool is already condemned; don't wait on it.
                        future.cancel()
                        remaining.append(job)
                        continue
                    try:
                        payload = future.result(timeout=config.job_timeout_s)
                    except FuturesTimeoutError:
                        condemned = True
                        engine.counters.timeouts += 1
                        probe.counter("exec.timeouts")
                        engine._retry_or_fail(
                            job,
                            attempts,
                            remaining,
                            TimeoutError(
                                f"{job.label} exceeded the "
                                f"{config.job_timeout_s}s job timeout"
                            ),
                        )
                        continue
                    except BrokenProcessPool as error:
                        condemned = True
                        engine._retry_or_fail(job, attempts, remaining, error)
                        continue
                    # Sanctioned broad catch: a worker raised a real job
                    # error — classify it, retry or record, never swallow.
                    except Exception as error:  # lint: disable=R007
                        engine._retry_or_fail(job, attempts, remaining, error)
                        continue
                    result = ExecResult.from_payload(job, payload, "run")
                    finished = done_at.get(id(future), time.perf_counter())
                    # Turnaround minus worker wall time approximates the
                    # time the job sat waiting for a worker slot.
                    queue_wait = max(
                        0.0, finished - queued_at - result.wall_s
                    )
                    engine._store(
                        job, result, queue_wait_s=queue_wait, absorb=True
                    )
                if condemned:
                    pool.shutdown(wait=False, cancel_futures=True)
                    if remaining and rebuilds_left > 0:
                        rebuilds_left -= 1
                        engine.counters.pool_rebuilds += 1
                        probe.counter("exec.pool_rebuilds")
                        pool = self._make_pool(workers, initializer, initargs)
                    elif remaining:
                        engine.counters.serial_fallbacks += 1
                        probe.counter("exec.serial_fallbacks")
                        LocalSerialBackend().execute(engine, remaining)
                        remaining = []
                elif remaining:
                    # Pure retries (no pool break): back off before the
                    # next round, by the slowest job's ladder.
                    time.sleep(
                        max(
                            backoff_delay(
                                config,
                                job.fingerprint,
                                attempts[job.fingerprint],
                            )
                            for job in remaining
                        )
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _make_pool(
        workers: int, initializer, initargs
    ) -> ProcessPoolExecutor:
        """Build a worker pool, arming observability when requested."""
        if initializer is None:
            return ProcessPoolExecutor(max_workers=workers)
        return ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        )


class BrokerExecBackend(ExecBackend):
    """Coordinator side of the distributed broker (lazy import)."""

    name = "broker"

    def execute(self, engine: "ExecEngine", pending: "list[SimJob]") -> None:
        """Publish the jobs to the engine's broker and drain the fleet."""
        from repro.exec.broker import drain

        drain(engine, pending)


#: The registry, keyed by backend name (stable, user-facing).
_EXEC_BACKENDS: dict[str, ExecBackendInfo] = {
    "local-serial": ExecBackendInfo(
        name="local-serial",
        summary="in-process execution with bounded retries",
        factory=LocalSerialBackend,
    ),
    "local-pool": ExecBackendInfo(
        name="local-pool",
        summary="ProcessPoolExecutor rounds with timeouts/rebuilds/fallback",
        factory=LocalPoolBackend,
    ),
    "broker": ExecBackendInfo(
        name="broker",
        summary="filesystem work broker drained by cntcache worker fleets",
        factory=BrokerExecBackend,
        distributed=True,
    ),
}


def exec_backends() -> tuple[ExecBackendInfo, ...]:
    """Every registered execution backend, in registration order."""
    return tuple(_EXEC_BACKENDS.values())


def exec_backend_names() -> tuple[str, ...]:
    """The registered execution-backend names."""
    return tuple(_EXEC_BACKENDS)


def make_exec_backend(name: str) -> ExecBackend:
    """Build the execution backend registered under ``name``."""
    try:
        info = _EXEC_BACKENDS[name]
    except KeyError:
        raise ExecBackendError(
            f"unknown exec backend {name!r}; known: {exec_backend_names()}"
        ) from None
    return info.factory()


__all__ = [
    "BrokerExecBackend",
    "ExecBackend",
    "ExecBackendError",
    "ExecBackendInfo",
    "LocalPoolBackend",
    "LocalSerialBackend",
    "exec_backend_names",
    "exec_backends",
    "make_exec_backend",
]

"""The content-addressed result store: one shared cache, many writers.

:class:`ResultStore` owns the on-disk result cache that used to live
inline in :class:`~repro.exec.engine.ExecEngine`.  Factoring it out
matters because the cache is no longer private to one engine: with the
distributed backend (:mod:`repro.exec.broker`) an arbitrary number of
worker processes — possibly on other machines — read and write the same
directory, and the store is their only rendezvous point.

Layout (unchanged from the engine's original cache)::

    <directory>/<fp[:2]>/<fp>.json    one JSON document per result:
        {"schema": ..., "fingerprint": ..., "job": {...}, "payload": {...}}

Atomicity discipline: every write lands in ``<name>.tmp.<pid>`` first
and is published with ``os.replace`` — concurrent writers of the same
fingerprint race benignly (last writer wins with an identical document,
because results are content-addressed).  A file that fails to parse is
quarantined aside as ``<name>.corrupt``, never deleted in the hot path:
the evidence (torn write? disk fault? foreign writer?) survives until
the startup janitor's TTL reaps it.

The janitor (:meth:`ResultStore.sweep`) generalizes the old
``_sweep_stale_tmps``: orphaned ``*.tmp.<pid>`` files (crashed mid
write), aged ``*.corrupt`` quarantine files (observed, diagnosed or
not, either way stale) and — via :func:`sweep_stale`, which the broker
reuses for lease litter — any other crash residue, each with its own
TTL and counter class.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro import faults
from repro.exec.job import ENGINE_SCHEMA, SimJob
from repro.exec.result import ExecResult
from repro.obs import probe

#: Orphaned ``*.tmp.<pid>`` cache files older than this are swept on
#: engine startup (crashed writers leave them behind); younger ones may
#: belong to a live concurrent run sharing the cache directory.
STALE_TMP_TTL_S = 3600.0

#: Quarantined ``*.corrupt`` files older than this are swept on engine
#: startup.  A day is long enough to inspect the evidence of a torn
#: write; without a TTL they accumulate forever on a long-lived cache.
STALE_CORRUPT_TTL_S = 86400.0

#: Stale broker-lease litter (``*.steal.*`` rename residue, lease tmp
#: files) older than this is swept when a coordinator starts a drain.
STALE_LEASE_TTL_S = 3600.0


@dataclass
class EngineCounters:
    """Running totals of everything the engine resolved."""

    requested: int = 0
    unique: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    failures: int = 0
    cache_corrupt: int = 0
    cache_read_errors: int = 0
    cache_write_errors: int = 0
    tmp_swept: int = 0
    corrupt_swept: int = 0
    lease_swept: int = 0
    # broker backend (coordinator side unless noted)
    published: int = 0
    claims: int = 0  # worker side: leases acquired
    lease_renewals: int = 0  # worker side: heartbeat renewals
    reclaims: int = 0
    workers_lost: int = 0
    quarantined: int = 0

    @property
    def resolved(self) -> int:
        """Total resolutions, however they were served."""
        return self.memo_hits + self.cache_hits + self.executed

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of resolutions served without simulating (0 if none)."""
        resolved = self.resolved
        if not resolved:
            return 0.0
        return (self.memo_hits + self.cache_hits) / resolved

    def to_dict(self) -> dict:
        """JSON-ready totals (manifest summaries, ``profile --json``)."""
        return {
            "requested": self.requested,
            "unique": self.unique,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "resolved": self.resolved,
            "cache_hit_rate": self.cache_hit_rate,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallbacks": self.serial_fallbacks,
            "failures": self.failures,
            "cache_corrupt": self.cache_corrupt,
            "cache_read_errors": self.cache_read_errors,
            "cache_write_errors": self.cache_write_errors,
            "tmp_swept": self.tmp_swept,
            "corrupt_swept": self.corrupt_swept,
            "lease_swept": self.lease_swept,
            "published": self.published,
            "claims": self.claims,
            "lease_renewals": self.lease_renewals,
            "reclaims": self.reclaims,
            "workers_lost": self.workers_lost,
            "quarantined": self.quarantined,
        }

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        text = (
            f"{self.requested} requested, {self.unique} unique, "
            f"{self.memo_hits} memo hit(s), {self.cache_hits} cache "
            f"hit(s), {self.executed} simulated"
        )
        extras = [
            f"{value} {name}"
            for name, value in (
                ("retried", self.retries),
                ("timed out", self.timeouts),
                ("pool rebuild(s)", self.pool_rebuilds),
                ("serial fallback(s)", self.serial_fallbacks),
                ("failed", self.failures),
                ("corrupt cache entr(ies)", self.cache_corrupt),
                ("cache read error(s)", self.cache_read_errors),
                ("reclaimed", self.reclaims),
                ("worker(s) lost", self.workers_lost),
                ("quarantined", self.quarantined),
            )
            if value
        ]
        if extras:
            text += ", " + ", ".join(extras)
        return text


def sweep_stale(directory: Path, pattern: str, ttl_s: float) -> int:
    """Unlink files matching ``pattern`` under ``directory`` older than
    ``ttl_s`` seconds; returns how many were removed.

    The shared janitor primitive: the result store uses it for tmp and
    corrupt-file hygiene, the broker for lease litter.  Younger matches
    are kept — they may belong to a live concurrent run.
    """
    if not directory.is_dir():
        return 0
    # Wall clock by necessity: staleness is judged against file mtimes,
    # which are wall-clock stamps.  Never feeds results.
    cutoff = time.time() - ttl_s  # lint: disable=D001
    swept = 0
    for path in directory.glob(pattern):
        try:
            if path.stat().st_mtime < cutoff:
                path.unlink()
                swept += 1
        except OSError:  # lint: disable=R007
            pass  # vanished mid-sweep (concurrent janitor): fine
    return swept


def _load_text(path: Path) -> str:
    """Read one cache file (module-level so tests can fake I/O faults)."""
    return path.read_text(encoding="utf-8")


class ResultStore:
    """The content-addressed on-disk result cache (shared, multi-writer)."""

    def __init__(
        self,
        directory: str | Path,
        counters: EngineCounters | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.counters = EngineCounters() if counters is None else counters
        self.progress = progress

    def path_for(self, fingerprint: str) -> Path:
        """Where a result with ``fingerprint`` lives (or would live)."""
        return self.directory / fingerprint[:2] / f"{fingerprint}.json"

    def read(self, job: SimJob) -> ExecResult | None:
        """The cached result of ``job``, or ``None`` on any kind of miss.

        Three miss flavours, all non-fatal: the file does not exist
        (plain miss), it is unreadable (``OSError`` — counted in
        ``exec.cache_read_errors`` and announced, because a permissions
        or disk problem on a shared cache deserves telemetry, then
        treated as a miss), or it does not parse (quarantined aside as
        ``<name>.corrupt``).
        """
        path = self.path_for(job.fingerprint)
        if not path.is_file():
            return None
        try:
            text = _load_text(path)
        except OSError as error:
            self.counters.cache_read_errors += 1
            probe.counter("exec.cache_read_errors")
            if self.progress is not None:
                self.progress(
                    f"[exec] cache read failed for {job.label}: {error}"
                )
            return None
        try:
            document = json.loads(text)
            if (
                document.get("schema") != ENGINE_SCHEMA
                or document.get("fingerprint") != job.fingerprint
            ):
                # A valid document from another schema/code version: a
                # plain miss, overwritten by the fresh result.
                return None
            return ExecResult.from_payload(job, document["payload"], "cache")
        except (ValueError, KeyError, TypeError):
            self.quarantine(path)
            return None

    def quarantine(self, path: Path) -> None:
        """Move an unparseable cache file aside as ``<name>.corrupt``.

        Quarantining instead of silently overwriting keeps the evidence
        (torn write? disk fault? foreign writer?) while still treating
        the entry as a miss.  The startup janitor reaps quarantine files
        after :data:`STALE_CORRUPT_TTL_S`.
        """
        self.counters.cache_corrupt += 1
        probe.counter("exec.cache_corrupt")
        if self.progress is not None:
            self.progress(f"[exec] quarantined corrupt cache entry {path.name}")
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:  # lint: disable=R007
            pass  # racing reader already moved or removed it

    def write(self, job: SimJob, result: ExecResult) -> None:
        """Persist ``result`` atomically (tmp + ``os.replace``).

        Write failures are tolerated and counted — the cache is an
        accelerator, not a correctness dependency — and the tmp file is
        cleaned so a flaky disk cannot litter the directory.
        """
        path = self.path_for(job.fingerprint)
        document = {
            "schema": ENGINE_SCHEMA,
            "fingerprint": job.fingerprint,
            "job": job.describe(),
            "payload": result.payload(),
        }
        data = faults.mangle_cache_write(
            job.fingerprint, json.dumps(document, sort_keys=True)
        )
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            faults.maybe_cache_write_error(job.fingerprint)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(data, encoding="utf-8")
            os.replace(tmp, path)  # atomic: concurrent runs share a cache
        except OSError as error:
            self.counters.cache_write_errors += 1
            probe.counter("exec.cache_write_errors")
            if self.progress is not None:
                self.progress(
                    f"[exec] cache write failed for {job.label}: {error}"
                )
            try:
                tmp.unlink(missing_ok=True)
            except OSError:  # lint: disable=R007
                pass  # best-effort cleanup on an already-failing disk

    def sweep(self) -> None:
        """The startup janitor: reap aged crash residue, per class.

        * ``*.tmp.<pid>`` older than :data:`STALE_TMP_TTL_S` — a writer
          crashed between ``write_text`` and ``os.replace``;
        * ``*.corrupt`` older than :data:`STALE_CORRUPT_TTL_S` —
          quarantined evidence nobody came back for.

        Counted per class (``tmp_swept`` / ``corrupt_swept``) so a cache
        that keeps accumulating residue is visible in summaries.
        """
        self.counters.tmp_swept += sweep_stale(
            self.directory, "*/*.tmp.*", STALE_TMP_TTL_S
        )
        self.counters.corrupt_swept += sweep_stale(
            self.directory, "*/*.corrupt", STALE_CORRUPT_TTL_S
        )


__all__ = [
    "STALE_CORRUPT_TTL_S",
    "STALE_LEASE_TTL_S",
    "STALE_TMP_TTL_S",
    "EngineCounters",
    "ResultStore",
    "sweep_stale",
]

"""The execution engine: memoized, cached, optionally parallel job runs.

:class:`ExecEngine` is the single authority experiments go through to get
simulation results (lint rule R006 enforces this for
``repro/harness/experiments.py``).  For every batch of requested jobs it:

1. plans — deduplicates the batch against itself *and* against every job
   this engine already resolved (so experiments sharing a baseline run
   simulate it once);
2. resolves — in-memory memo first, then the content-addressed on-disk
   cache (``cache_dir``), keyed by :attr:`SimJob.fingerprint` and
   versioned by the engine schema + code fingerprint;
3. executes the remainder — serially in-process, or across a
   ``ProcessPoolExecutor`` when ``jobs > 1``.  Parallel results travel as
   JSON-exact payloads, so they are bit-identical to serial ones.

Observability: per-job wall time, accesses/second and result source flow
through the optional ``progress`` callback, and :attr:`ExecEngine.counters`
aggregates requested/unique/memo/cache/executed totals.  Attaching an
``obs`` session (:class:`repro.obs.Obs`) additionally turns the probes on
for the duration of every batch: the engine publishes ``exec.*`` counters
and queue-wait timings, instrumented simulation code publishes
``cache.*``/``codec.*``/``workload.*`` traffic (captured per job in the
workers and shipped home through the result payload), and every unique
job resolution plus a batch summary lands in the session's run manifest.

Cache layout (``cache_dir``)::

    <cache_dir>/<fp[:2]>/<fp>.json    one JSON document per result:
        {"schema": ..., "fingerprint": ..., "job": {...}, "payload": {...}}

A cache file is used only if its schema tag and fingerprint match; any
mismatch or parse error is treated as a miss (and overwritten), never an
error.  Because the fingerprint folds in a hash of all simulation source
(see :func:`repro.exec.job.code_fingerprint`), editing simulator code
invalidates stale entries automatically.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Callable, Iterable, Mapping
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.exec.job import ENGINE_SCHEMA, SimJob
from repro.exec.planner import plan_jobs
from repro.exec.result import ExecResult
from repro.exec.worker import execute_job, execute_payload
from repro.obs import probe


class EngineError(RuntimeError):
    """Raised on invalid engine configuration or use."""


@dataclass
class EngineCounters:
    """Running totals of everything the engine resolved."""

    requested: int = 0
    unique: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0

    @property
    def resolved(self) -> int:
        """Total resolutions, however they were served."""
        return self.memo_hits + self.cache_hits + self.executed

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of resolutions served without simulating (0 if none)."""
        resolved = self.resolved
        if not resolved:
            return 0.0
        return (self.memo_hits + self.cache_hits) / resolved

    def to_dict(self) -> dict:
        """JSON-ready totals (manifest summaries, ``profile --json``)."""
        return {
            "requested": self.requested,
            "unique": self.unique,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "resolved": self.resolved,
            "cache_hit_rate": self.cache_hit_rate,
        }

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        return (
            f"{self.requested} requested, {self.unique} unique, "
            f"{self.memo_hits} memo hit(s), {self.cache_hits} cache "
            f"hit(s), {self.executed} simulated"
        )


class ExecEngine:
    """Plan, deduplicate, cache and execute :class:`SimJob` batches."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        progress: Callable[[str], None] | None = None,
        obs=None,
    ) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise EngineError(f"jobs must be a positive int, got {jobs!r}")
        self.jobs = jobs
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.progress = progress
        #: Optional :class:`repro.obs.Obs` session; when set, probes are
        #: enabled around every batch and manifests are emitted into it.
        self.obs = obs
        self.counters = EngineCounters()
        #: fingerprint -> resolved result (the cross-batch memo).
        self._memo: dict[str, ExecResult] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @contextmanager
    def observing(self, obs):
        """Temporarily attach an obs session (``None`` = leave as-is)."""
        if obs is None:
            yield self
            return
        previous = self.obs
        self.obs = obs
        try:
            yield self
        finally:
            self.obs = previous

    def run_jobs(self, jobs: Iterable[SimJob]) -> list[ExecResult]:
        """Resolve a batch; returns results aligned with the input order."""
        ordered = list(jobs)
        with probe.recording(self.obs):
            with probe.timer("exec.batch"):
                return self._resolve(ordered)

    def _resolve(self, ordered: list[SimJob]) -> list[ExecResult]:
        plan = plan_jobs(ordered)
        self.counters.requested += len(plan.requested)
        probe.counter("exec.requested", len(plan.requested))

        pending: list[SimJob] = []
        for job in plan.unique:
            if job.fingerprint in self._memo:
                self.counters.memo_hits += 1
                probe.counter("exec.memo_hits")
                self._emit(job, self._memo[job.fingerprint], source="memo")
                continue
            self.counters.unique += 1
            cached = self._cache_read(job)
            if cached is not None:
                self.counters.cache_hits += 1
                probe.counter("exec.cache_hits")
                self._memo[job.fingerprint] = cached
                if self.obs is not None:
                    self.obs.record_job(job, cached)
                self._emit(job, cached)
            else:
                pending.append(job)

        self._execute(pending)
        return [self._memo[job.fingerprint] for job in ordered]

    def run_map(self, jobs: Mapping) -> dict:
        """Resolve a ``{key: SimJob}`` mapping into ``{key: ExecResult}``.

        The declarative form the experiments use: declare every job of the
        experiment keyed by its table coordinates, submit once, consume.
        """
        keys = list(jobs)
        results = self.run_jobs([jobs[key] for key in keys])
        return dict(zip(keys, results))

    def run_job(self, job: SimJob) -> ExecResult:
        """Resolve a single job."""
        return self.run_jobs([job])[0]

    def stats(self, job: SimJob):
        """Shorthand: the :class:`EnergyStats` of one resolved job."""
        result = self.run_job(job)
        if result.stats is None:
            raise EngineError(f"job {job.label} produced no EnergyStats")
        return result.stats

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _execute(self, pending: list[SimJob]) -> None:
        if not pending:
            return
        if self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            # Force-enable probes in the workers iff they are on here;
            # per-job captures come back inside the result payloads.
            initializer = probe.enable_in_worker if probe.ENABLED else None
            done_at: dict[int, float] = {}
            with ProcessPoolExecutor(
                max_workers=workers, initializer=initializer
            ) as pool:
                queued_at = time.perf_counter()
                futures = [pool.submit(execute_payload, job) for job in pending]
                for future in futures:
                    future.add_done_callback(
                        lambda f, d=done_at: d.setdefault(
                            id(f), time.perf_counter()
                        )
                    )
                for job, future in zip(pending, futures):
                    result = ExecResult.from_payload(job, future.result(), "run")
                    finished = done_at.get(id(future), time.perf_counter())
                    # Turnaround minus worker wall time approximates the
                    # time the job sat waiting for a worker slot.
                    queue_wait = max(0.0, finished - queued_at - result.wall_s)
                    self._store(
                        job, result, queue_wait_s=queue_wait, absorb=True
                    )
        else:
            for job in pending:
                self._store(job, execute_job(job))

    def _store(
        self,
        job: SimJob,
        result: ExecResult,
        queue_wait_s: float = 0.0,
        absorb: bool = False,
    ) -> None:
        self.counters.executed += 1
        if probe.ENABLED:
            probe.counter("exec.executed")
            if queue_wait_s:
                probe.timing("exec.queue_wait", queue_wait_s)
            # Serial results recorded their probe traffic live; worker
            # results carry it in the payload snapshot and must be merged
            # here, exactly once.
            if absorb:
                probe.absorb(result.obs)
        if self.obs is not None:
            self.obs.record_job(job, result, queue_wait_s=queue_wait_s)
        self._memo[job.fingerprint] = result
        self._cache_write(job, result)
        self._emit(job, result)

    # ------------------------------------------------------------------ #
    # on-disk cache
    # ------------------------------------------------------------------ #
    def _cache_path(self, job: SimJob) -> Path | None:
        if self.cache_dir is None:
            return None
        fingerprint = job.fingerprint
        return self.cache_dir / fingerprint[:2] / f"{fingerprint}.json"

    def _cache_read(self, job: SimJob) -> ExecResult | None:
        path = self._cache_path(job)
        if path is None or not path.is_file():
            return None
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            if (
                document.get("schema") != ENGINE_SCHEMA
                or document.get("fingerprint") != job.fingerprint
            ):
                return None
            return ExecResult.from_payload(job, document["payload"], "cache")
        except (OSError, ValueError, KeyError):
            return None  # corrupt or foreign entry: a miss, never an error

    def _cache_write(self, job: SimJob, result: ExecResult) -> None:
        path = self._cache_path(job)
        if path is None:
            return
        document = {
            "schema": ENGINE_SCHEMA,
            "fingerprint": job.fingerprint,
            "job": job.describe(),
            "payload": result.payload(),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)  # atomic: concurrent runs can share a cache

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def _emit(
        self, job: SimJob, result: ExecResult, source: str | None = None
    ) -> None:
        if self.progress is None:
            return
        resolved = (
            self.counters.memo_hits
            + self.counters.cache_hits
            + self.counters.executed
        )
        rate = result.accesses_per_s
        rate_text = f"{rate / 1000:.1f}k acc/s" if rate else "-"
        self.progress(
            f"[exec {resolved}] {source or result.source:<5} "
            f"{result.wall_s:7.3f}s {rate_text:>12}  {job.label}"
        )

    def summary(self) -> str:
        """One-line counters summary."""
        return f"exec: {self.counters.describe()}"


# --------------------------------------------------------------------- #
# selftest: in-process == subprocess == cache read-back
# --------------------------------------------------------------------- #
def run_selftest(
    size: str = "tiny",
    seed: int = 3,
    progress: Callable[[str], None] | None = None,
) -> list[str]:
    """Assert result parity across every execution mode; returns failures.

    For a representative job of every kind, the measurement must be
    byte-identical (``ExecResult.canonical``) when executed in-process,
    in a worker subprocess, and after an on-disk cache round-trip.  This
    is the determinism contract the parallel executor and the result
    cache both rest on.
    """
    import tempfile

    from repro.core.config import CNTCacheConfig
    from repro.exec.job import (
        audit_job,
        l2_job,
        oracle_job,
        trace_job,
        workload_job,
    )

    config = CNTCacheConfig()
    candidates = [
        workload_job(config, "stream", size, seed),
        workload_job(config.variant(scheme="baseline"), "stream", size, seed),
        oracle_job(config, "crc32", size, seed),
        l2_job(config, "stream", size, seed),
        audit_job(config, "records", size, seed),
        trace_job("crc32", size, seed),
    ]
    failures: list[str] = []
    with ProcessPoolExecutor(max_workers=1) as pool:
        for job in candidates:
            started = time.perf_counter()
            inproc = execute_job(job)
            sub = ExecResult.from_payload(
                job, pool.submit(execute_payload, job).result(), "run"
            )
            with tempfile.TemporaryDirectory() as tmp:
                writer = ExecEngine(cache_dir=tmp)
                writer._memo[job.fingerprint] = inproc
                writer._cache_write(job, inproc)
                reader = ExecEngine(cache_dir=tmp)
                cached = reader.run_job(job)
            ok = (
                inproc.canonical() == sub.canonical() == cached.canonical()
                and cached.source == "cache"
            )
            if not ok:
                failures.append(
                    f"{job.label}: in-process/subprocess/cache results differ"
                )
            if progress is not None:
                verdict = "ok" if ok else "FAIL"
                progress(
                    f"selftest {job.label:<40} {verdict} "
                    f"({time.perf_counter() - started:.2f}s)"
                )
    return failures

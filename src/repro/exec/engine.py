"""The execution engine: memoized, cached, optionally distributed runs.

:class:`ExecEngine` is the single authority experiments go through to get
simulation results (lint rule R006 enforces this for
``repro/harness/experiments.py``).  For every batch of requested jobs it:

1. plans — deduplicates the batch against itself *and* against every job
   this engine already resolved (so experiments sharing a baseline run
   simulate it once);
2. resolves — in-memory memo first, then the content-addressed on-disk
   cache (``cache_dir``, a :class:`repro.exec.store.ResultStore`), keyed
   by :attr:`SimJob.fingerprint` and versioned by the engine schema +
   code fingerprint;
3. executes the remainder through an *execution backend*
   (:mod:`repro.exec.backends`): ``local-serial`` in-process,
   ``local-pool`` across a ``ProcessPoolExecutor``, or ``broker`` — the
   distributed mode where this engine coordinates a fleet of
   ``cntcache worker`` processes through a shared filesystem broker
   (:mod:`repro.exec.broker`).  Results travel as JSON-exact payloads
   (or through the shared cache), so every backend is bit-identical to
   serial execution.

Observability: per-job wall time, accesses/second and result source flow
through the optional ``progress`` callback, and :attr:`ExecEngine.counters`
aggregates requested/unique/memo/cache/executed totals.  Attaching an
``obs`` session (:class:`repro.obs.Obs`) additionally turns the probes on
for the duration of every batch: the engine publishes ``exec.*`` counters
and queue-wait timings, instrumented simulation code publishes
``cache.*``/``codec.*``/``workload.*`` traffic (captured per job in the
workers and shipped home through the result payload), and every unique
job resolution plus a batch summary lands in the session's run manifest.

The cache layout and its atomicity/quarantine discipline are documented
in :mod:`repro.exec.store`; a mismatching schema tag or code fingerprint
is a plain miss, so editing simulator code invalidates stale entries
automatically.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Iterable, Mapping
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from pathlib import Path

from repro.backends import backend_names
from repro.exec.backends import exec_backend_names, make_exec_backend
from repro.exec.broker import BrokerConfig
from repro.exec.job import SimJob
from repro.exec.planner import plan_jobs
from repro.exec.result import ExecResult
from repro.exec.store import (  # noqa: F401  (re-exported compat names)
    STALE_TMP_TTL_S,
    EngineCounters,
    ResultStore,
)
from repro.exec.worker import execute_job, execute_payload
from repro.obs import probe, trace
from repro.obs.telemetry import (
    TelemetryWriter,
    default_identity,
    make_trace_id,
    span_for,
    telemetry_dir,
)
from repro.resilience import (
    FailureRecord,
    ResilienceConfig,
    classify_transient,
    failure_for,
)


class EngineError(RuntimeError):
    """Raised on invalid engine configuration or use."""


class ExecEngine:
    """Plan, deduplicate, cache and execute :class:`SimJob` batches."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        progress: Callable[[str], None] | None = None,
        obs=None,
        resilience: ResilienceConfig | None = None,
        backend: str | None = None,
        exec_backend: str | None = None,
        broker: BrokerConfig | str | Path | None = None,
        telemetry: str | Path | TelemetryWriter | None = None,
    ) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise EngineError(f"jobs must be a positive int, got {jobs!r}")
        if backend is not None and backend not in backend_names():
            raise EngineError(
                f"unknown backend {backend!r}; known: {backend_names()}"
            )
        if resilience is None:
            resilience = ResilienceConfig()
        elif not isinstance(resilience, ResilienceConfig):
            raise EngineError(
                f"resilience must be a ResilienceConfig, got {resilience!r}"
            )
        if isinstance(broker, (str, Path)):
            broker = BrokerConfig(root=broker)
        elif broker is not None and not isinstance(broker, BrokerConfig):
            raise EngineError(
                f"broker must be a BrokerConfig or directory, got {broker!r}"
            )
        if broker is not None and exec_backend is None:
            exec_backend = "broker"
        if exec_backend is not None and exec_backend not in exec_backend_names():
            raise EngineError(
                f"unknown exec backend {exec_backend!r}; "
                f"known: {exec_backend_names()}"
            )
        if exec_backend == "broker":
            if broker is None:
                raise EngineError(
                    "the 'broker' exec backend needs a broker directory "
                    "(broker=BrokerConfig(...) or broker=<path>)"
                )
            # The broker's cache *is* the result transport: workers write
            # there and the coordinator adopts from there, so a divergent
            # cache_dir would split the single source of truth in two.
            shared = broker.cache_dir
            if cache_dir is None:
                cache_dir = shared
            elif Path(cache_dir).resolve() != shared.resolve():
                raise EngineError(
                    "a broker engine shares the broker's cache "
                    f"({shared}); drop cache_dir or point it there"
                )
        self.jobs = jobs
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.progress = progress
        #: Backend override: when set, every simulating job this engine
        #: resolves runs under this backend (see
        #: :func:`repro.backends.backends`).  ``None`` respects each
        #: job's own ``backend`` field.
        self.backend = backend
        #: Execution-backend override (see :mod:`repro.exec.backends`).
        #: ``None`` selects locally by batch shape: ``local-pool`` when
        #: ``jobs > 1`` and more than one job is pending, else
        #: ``local-serial`` — exactly the pre-registry behaviour.
        self.exec_backend = exec_backend
        #: Broker configuration (``broker`` exec backend only).
        self.broker = broker
        #: Optional :class:`repro.obs.Obs` session; when set, probes are
        #: enabled around every batch and manifests are emitted into it.
        self.obs = obs
        #: Fault-tolerance policy (see :mod:`repro.resilience`).
        self.resilience = resilience
        self.counters = EngineCounters()
        #: Every :class:`FailureRecord` this engine collected (keep-going).
        self.failures: list[FailureRecord] = []
        #: The shared on-disk result store (None = memo-only engine).
        self.store = (
            None
            if self.cache_dir is None
            else ResultStore(self.cache_dir, self.counters, progress)
        )
        # Telemetry is opt-in and otherwise zero-cost: a broker engine
        # streams into the broker's telemetry/ bus automatically (that is
        # what `cntcache top` tails); any engine can point it elsewhere
        # with an explicit directory.  `None` here means no frames, no
        # trace ids, no wall-clock reads — byte-for-byte the old engine.
        if telemetry is None and broker is not None:
            telemetry = telemetry_dir(broker.root)
        if telemetry is None or isinstance(telemetry, TelemetryWriter):
            self.telemetry = telemetry
        else:
            self.telemetry = TelemetryWriter(
                telemetry,
                identity=default_identity("coordinator"),
                role="coordinator",
            )
        #: Fleet correlation id for this coordinator's published jobs
        #: (``None`` without telemetry — serial runs stay wall-clock-free).
        self.trace_id: str | None = None
        if self.telemetry is not None:
            if self.telemetry.trace_id is None:
                self.telemetry.trace_id = make_trace_id(
                    self.telemetry.identity
                )
            self.trace_id = self.telemetry.trace_id
        #: Running accesses/energy tallies for telemetry heartbeats only;
        #: per-job fJ totals stay unsummed until report time (D005/R001:
        #: order-safe math.fsum instead of bare float accumulation).
        self._tele_accesses = 0
        self._tele_energy: list[float] = []
        #: fingerprint -> resolved result (the cross-batch memo).
        self._memo: dict[str, ExecResult] = {}
        #: fingerprint -> failed placeholder, valid for the current batch
        #: only — a later batch gets a fresh shot at the job.
        self._failed: dict[str, ExecResult] = {}
        if self.store is not None:
            self.store.sweep()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @contextmanager
    def observing(self, obs):
        """Temporarily attach an obs session (``None`` = leave as-is)."""
        if obs is None:
            yield self
            return
        previous = self.obs
        self.obs = obs
        try:
            yield self
        finally:
            self.obs = previous

    def run_jobs(self, jobs: Iterable[SimJob]) -> list[ExecResult]:
        """Resolve a batch; returns results aligned with the input order.

        Transient job failures (crashed workers, broken pools, timeouts)
        are retried per :attr:`resilience`; a job that exhausts its
        attempts raises :class:`~repro.resilience.JobFailure` — or, with
        ``keep_going``, resolves to a failed placeholder
        (``result.ok is False``, ``result.failure`` carries the record)
        while the rest of the batch completes normally.
        """
        ordered = [self._with_backend(job) for job in jobs]
        with probe.recording(self.obs):
            with probe.timer("exec.batch"), trace.span(
                "exec.batch", jobs=len(ordered)
            ):
                return self._resolve(ordered)

    def _with_backend(self, job: SimJob) -> SimJob:
        """Apply the engine's backend override to one simulating job.

        ``trace`` and ``oracle`` jobs never construct a simulator, so
        their identity is left untouched — overriding them would only
        split cache keys across provably identical results.
        """
        if (
            self.backend is None
            or job.backend == self.backend
            or job.kind in ("trace", "oracle")
        ):
            return job
        from dataclasses import replace

        return replace(job, backend=self.backend)

    def _resolve(self, ordered: list[SimJob]) -> list[ExecResult]:
        plan = plan_jobs(ordered)
        self.counters.requested += len(plan.requested)
        probe.counter("exec.requested", len(plan.requested))
        self._failed.clear()

        pending: list[SimJob] = []
        for job in plan.unique:
            if job.fingerprint in self._memo:
                self.counters.memo_hits += 1
                probe.counter("exec.memo_hits")
                self._emit(job, self._memo[job.fingerprint], source="memo")
                continue
            self.counters.unique += 1
            cached = self._cache_read(job)
            if cached is not None:
                self.counters.cache_hits += 1
                probe.counter("exec.cache_hits")
                self._memo[job.fingerprint] = cached
                if self.obs is not None:
                    trace_id, span_id = self._trace_ids(job)
                    self.obs.record_job(
                        job, cached, trace_id=trace_id, span_id=span_id
                    )
                self._emit(job, cached)
            else:
                pending.append(job)

        self._execute(pending)
        return [
            self._memo.get(job.fingerprint)
            or self._failed[job.fingerprint]
            for job in ordered
        ]

    def run_map(self, jobs: Mapping) -> dict:
        """Resolve a ``{key: SimJob}`` mapping into ``{key: ExecResult}``.

        The declarative form the experiments use: declare every job of the
        experiment keyed by its table coordinates, submit once, consume.
        """
        keys = list(jobs)
        results = self.run_jobs([jobs[key] for key in keys])
        return dict(zip(keys, results))

    def run_job(self, job: SimJob) -> ExecResult:
        """Resolve a single job."""
        return self.run_jobs([job])[0]

    def stats(self, job: SimJob):
        """Shorthand: the :class:`EnergyStats` of one resolved job."""
        result = self.run_job(job)
        if result.stats is None:
            raise EngineError(f"job {job.label} produced no EnergyStats")
        return result.stats

    # ------------------------------------------------------------------ #
    # execution (dispatched through repro.exec.backends)
    # ------------------------------------------------------------------ #
    def _execute(self, pending: list[SimJob]) -> None:
        if not pending:
            return
        name = self.exec_backend
        if name is None:
            name = (
                "local-pool"
                if self.jobs > 1 and len(pending) > 1
                else "local-serial"
            )
        make_exec_backend(name).execute(self, pending)

    def _should_retry(
        self, job: SimJob, attempt: int, error: BaseException
    ) -> bool:
        """Classify ``error``; count and announce the retry if granted."""
        if (
            not classify_transient(error)
            or attempt >= self.resilience.max_retries
        ):
            return False
        self.counters.retries += 1
        probe.counter("exec.retries")
        if self.progress is not None:
            self.progress(
                f"[exec] retry {attempt + 1}/{self.resilience.max_retries} "
                f"{job.label}: {type(error).__name__}: {error}"
            )
        return True

    def _retry_or_fail(
        self,
        job: SimJob,
        attempts: dict[str, int],
        remaining: list[SimJob],
        error: BaseException,
    ) -> None:
        """Pool-path outcome of one failed attempt: re-queue or record."""
        if self._should_retry(job, attempts[job.fingerprint], error):
            attempts[job.fingerprint] += 1
            remaining.append(job)
        else:
            self._fail(job, error, attempts[job.fingerprint] + 1)

    def _fail(self, job: SimJob, error: BaseException, attempts: int) -> None:
        """A job exhausted its attempts: record it, or raise (fail-fast)."""
        record = FailureRecord.from_error(job, error, attempts)
        self.counters.failures += 1
        probe.counter("exec.failures")
        if self.obs is not None:
            self.obs.record_failure(record)
        if self.telemetry is not None:
            trace_id, span_id = self._trace_ids(job)
            self.telemetry.lifecycle(
                "fail",
                fingerprint=job.fingerprint,
                label=job.label,
                error=record.error,
                attempts=attempts,
                trace_id=trace_id,
                span_id=span_id,
            )
        if not self.resilience.keep_going:
            raise failure_for(record) from error
        self.failures.append(record)
        placeholder = ExecResult.failed(job, record)
        self._failed[job.fingerprint] = placeholder
        self._emit(job, placeholder)

    def _store(
        self,
        job: SimJob,
        result: ExecResult,
        queue_wait_s: float = 0.0,
        absorb: bool = False,
    ) -> None:
        self.counters.executed += 1
        if probe.ENABLED:
            probe.counter("exec.executed")
            if queue_wait_s:
                probe.timing("exec.queue_wait", queue_wait_s)
            # Serial results recorded their probe traffic live; worker
            # results carry it in the payload snapshot and must be merged
            # here, exactly once.
            if absorb:
                probe.absorb(result.obs)
        if absorb and trace.ACTIVE:
            # Same contract for trace events: worker sinks ship their
            # snapshot home and it merges into the parent sink once.
            trace.absorb(result.trace)
        trace_id, span_id = self._trace_ids(job)
        if self.obs is not None:
            self.obs.record_job(
                job,
                result,
                queue_wait_s=queue_wait_s,
                trace_id=trace_id,
                span_id=span_id,
            )
        if self.telemetry is not None:
            self._account_telemetry(job, result, "finish", trace_id, span_id)
        self._memo[job.fingerprint] = result
        self._cache_write(job, result)
        self._emit(job, result)

    def _adopt(self, job: SimJob, result: ExecResult) -> None:
        """Install a result another process produced (distributed path).

        The broker coordinator reads completed results back from the
        shared store; they count as executed work (someone simulated
        them for this batch) but are *not* re-written to the cache —
        the worker's write is the authoritative copy.
        """
        self.counters.executed += 1
        probe.counter("exec.executed")
        trace_id, span_id = self._trace_ids(job)
        if self.obs is not None:
            self.obs.record_job(
                job, result, trace_id=trace_id, span_id=span_id
            )
        if self.telemetry is not None:
            self._account_telemetry(job, result, "adopt", trace_id, span_id)
        self._memo[job.fingerprint] = result
        self._emit(job, result)

    # ------------------------------------------------------------------ #
    # on-disk cache (delegates to the shared ResultStore)
    # ------------------------------------------------------------------ #
    def _cache_path(self, job: SimJob) -> Path | None:
        if self.store is None:
            return None
        return self.store.path_for(job.fingerprint)

    def _cache_read(self, job: SimJob) -> ExecResult | None:
        if self.store is None:
            return None
        return self.store.read(job)

    def _cache_write(self, job: SimJob, result: ExecResult) -> None:
        if self.store is not None:
            self.store.write(job, result)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def _trace_ids(self, job: SimJob) -> tuple[str | None, str | None]:
        """The (trace_id, span_id) pair for one job, or ``(None, None)``."""
        if self.trace_id is None:
            return (None, None)
        return (self.trace_id, span_for(self.trace_id, job.fingerprint))

    def _account_telemetry(
        self,
        job: SimJob,
        result: ExecResult,
        event: str,
        trace_id: str | None,
        span_id: str | None,
    ) -> None:
        """One unique resolution landed: tally it and stream a lifecycle
        frame (``finish`` for local executions, ``adopt`` for results a
        fleet worker produced — the worker already streamed the
        ``finish``, so the collector's energy accounting stays
        exactly-once)."""
        self._tele_accesses += result.accesses
        if result.stats is not None:
            self._tele_energy.append(result.stats.total_fj)
        assert self.telemetry is not None
        self.telemetry.lifecycle(
            event,
            fingerprint=job.fingerprint,
            label=job.label,
            kind=job.kind,
            scheme=None if job.config is None else job.config.scheme,
            wall_s=result.wall_s,
            accesses=result.accesses,
            energy_fj=None if result.stats is None else result.stats.total_fj,
            trace_id=trace_id,
            span_id=span_id,
        )

    def close_telemetry(self) -> None:
        """Stream the final ``exit`` frames and close the writer (no-op
        without telemetry; called by the CLI when a run ends)."""
        if self.telemetry is None:
            return
        resolved = (
            self.counters.memo_hits
            + self.counters.cache_hits
            + self.counters.executed
        )
        self.telemetry.lifecycle(
            "exit", jobs_done=resolved, failures=self.counters.failures
        )
        self.telemetry.heartbeat(
            "exited",
            force=True,
            jobs_done=resolved,
            accesses=self._tele_accesses,
            energy_fj=math.fsum(self._tele_energy),
        )
        self.telemetry.close()

    def _emit(
        self, job: SimJob, result: ExecResult, source: str | None = None
    ) -> None:
        if self.telemetry is not None and self.telemetry.due:
            resolved = (
                self.counters.memo_hits
                + self.counters.cache_hits
                + self.counters.executed
            )
            self.telemetry.heartbeat(
                "running",
                job=job.label,
                kind=job.kind,
                jobs_done=resolved,
                executed=self.counters.executed,
                cache_hits=self.counters.cache_hits,
                memo_hits=self.counters.memo_hits,
                failures=self.counters.failures,
                accesses=self._tele_accesses,
                energy_fj=math.fsum(self._tele_energy),
            )
        if self.progress is None:
            return
        resolved = (
            self.counters.memo_hits
            + self.counters.cache_hits
            + self.counters.executed
        )
        rate = result.accesses_per_s
        rate_text = f"{rate / 1000:.1f}k acc/s" if rate else "-"
        self.progress(
            f"[exec {resolved}] {source or result.source:<5} "
            f"{result.wall_s:7.3f}s {rate_text:>12}  {job.label}"
        )

    def summary(self) -> str:
        """One-line counters summary."""
        return f"exec: {self.counters.describe()}"


# --------------------------------------------------------------------- #
# selftest: in-process == subprocess == cache read-back
# --------------------------------------------------------------------- #
def run_selftest(
    size: str = "tiny",
    seed: int = 3,
    progress: Callable[[str], None] | None = None,
) -> list[str]:
    """Assert result parity across every execution mode; returns failures.

    For a representative job of every kind, the measurement must be
    byte-identical (``ExecResult.canonical``) when executed in-process,
    in a worker subprocess, and after an on-disk cache round-trip.  This
    is the determinism contract the parallel executor and the result
    cache both rest on.

    When the array backend is importable, every simulating candidate is
    additionally re-executed under ``backend="array"`` and its canonical
    measurement must match the scalar oracle's byte for byte — the
    cross-backend leg of the same contract.
    """
    import tempfile

    from dataclasses import replace

    from repro.backends import array_available
    from repro.core.config import CNTCacheConfig
    from repro.exec.job import (
        audit_job,
        l2_job,
        oracle_job,
        trace_job,
        workload_job,
    )

    config = CNTCacheConfig()
    candidates = [
        workload_job(config, "stream", size, seed),
        workload_job(config.variant(scheme="baseline"), "stream", size, seed),
        oracle_job(config, "crc32", size, seed),
        l2_job(config, "stream", size, seed),
        audit_job(config, "records", size, seed),
        trace_job("crc32", size, seed),
    ]
    cross_check = array_available()
    failures: list[str] = []
    with ProcessPoolExecutor(max_workers=1) as pool:
        for job in candidates:
            started = time.perf_counter()
            inproc = execute_job(job)
            sub = ExecResult.from_payload(
                job, pool.submit(execute_payload, job).result(), "run"
            )
            with tempfile.TemporaryDirectory() as tmp:
                writer = ExecEngine(cache_dir=tmp)
                writer._memo[job.fingerprint] = inproc
                writer._cache_write(job, inproc)
                reader = ExecEngine(cache_dir=tmp)
                cached = reader.run_job(job)
            ok = (
                inproc.canonical() == sub.canonical() == cached.canonical()
                and cached.source == "cache"
            )
            if not ok:
                failures.append(
                    f"{job.label}: in-process/subprocess/cache results differ"
                )
            if cross_check and job.kind in ("workload", "l2", "audit"):
                mirrored = execute_job(replace(job, backend="array"))
                if mirrored.canonical() != inproc.canonical():
                    ok = False
                    failures.append(
                        f"{job.label}: array backend diverges from the "
                        "scalar oracle"
                    )
            if progress is not None:
                verdict = "ok" if ok else "FAIL"
                progress(
                    f"selftest {job.label:<40} {verdict} "
                    f"({time.perf_counter() - started:.2f}s)"
                )
    return failures

"""The execution engine: memoized, cached, optionally parallel job runs.

:class:`ExecEngine` is the single authority experiments go through to get
simulation results (lint rule R006 enforces this for
``repro/harness/experiments.py``).  For every batch of requested jobs it:

1. plans — deduplicates the batch against itself *and* against every job
   this engine already resolved (so experiments sharing a baseline run
   simulate it once);
2. resolves — in-memory memo first, then the content-addressed on-disk
   cache (``cache_dir``), keyed by :attr:`SimJob.fingerprint` and
   versioned by the engine schema + code fingerprint;
3. executes the remainder — serially in-process, or across a
   ``ProcessPoolExecutor`` when ``jobs > 1``.  Parallel results travel as
   JSON-exact payloads, so they are bit-identical to serial ones.

Observability: per-job wall time, accesses/second and result source flow
through the optional ``progress`` callback, and :attr:`ExecEngine.counters`
aggregates requested/unique/memo/cache/executed totals.  Attaching an
``obs`` session (:class:`repro.obs.Obs`) additionally turns the probes on
for the duration of every batch: the engine publishes ``exec.*`` counters
and queue-wait timings, instrumented simulation code publishes
``cache.*``/``codec.*``/``workload.*`` traffic (captured per job in the
workers and shipped home through the result payload), and every unique
job resolution plus a batch summary lands in the session's run manifest.

Cache layout (``cache_dir``)::

    <cache_dir>/<fp[:2]>/<fp>.json    one JSON document per result:
        {"schema": ..., "fingerprint": ..., "job": {...}, "payload": {...}}

A cache file is used only if its schema tag and fingerprint match; a
mismatch is treated as a miss (and overwritten), and an unparseable file
is quarantined to ``<fingerprint>.corrupt`` (counted in
``exec.cache_corrupt``) — never an error.  Because the fingerprint folds
in a hash of all simulation source
(see :func:`repro.exec.job.code_fingerprint`), editing simulator code
invalidates stale entries automatically.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Callable, Iterable, Mapping
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro import faults
from repro.backends import backend_names
from repro.exec.job import ENGINE_SCHEMA, SimJob
from repro.exec.planner import plan_jobs
from repro.exec.result import ExecResult
from repro.exec.worker import (
    execute_job,
    execute_payload,
    init_worker_observability,
)
from repro.obs import probe, trace
from repro.resilience import (
    FailureRecord,
    ResilienceConfig,
    backoff_delay,
    classify_transient,
    failure_for,
)


class EngineError(RuntimeError):
    """Raised on invalid engine configuration or use."""


#: Orphaned ``*.tmp.<pid>`` cache files older than this are swept on
#: engine startup (crashed writers leave them behind); younger ones may
#: belong to a live concurrent run sharing the cache directory.
STALE_TMP_TTL_S = 3600.0


@dataclass
class EngineCounters:
    """Running totals of everything the engine resolved."""

    requested: int = 0
    unique: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    failures: int = 0
    cache_corrupt: int = 0
    cache_write_errors: int = 0
    tmp_swept: int = 0

    @property
    def resolved(self) -> int:
        """Total resolutions, however they were served."""
        return self.memo_hits + self.cache_hits + self.executed

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of resolutions served without simulating (0 if none)."""
        resolved = self.resolved
        if not resolved:
            return 0.0
        return (self.memo_hits + self.cache_hits) / resolved

    def to_dict(self) -> dict:
        """JSON-ready totals (manifest summaries, ``profile --json``)."""
        return {
            "requested": self.requested,
            "unique": self.unique,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "resolved": self.resolved,
            "cache_hit_rate": self.cache_hit_rate,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallbacks": self.serial_fallbacks,
            "failures": self.failures,
            "cache_corrupt": self.cache_corrupt,
            "cache_write_errors": self.cache_write_errors,
            "tmp_swept": self.tmp_swept,
        }

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        text = (
            f"{self.requested} requested, {self.unique} unique, "
            f"{self.memo_hits} memo hit(s), {self.cache_hits} cache "
            f"hit(s), {self.executed} simulated"
        )
        extras = [
            f"{value} {name}"
            for name, value in (
                ("retried", self.retries),
                ("timed out", self.timeouts),
                ("pool rebuild(s)", self.pool_rebuilds),
                ("serial fallback(s)", self.serial_fallbacks),
                ("failed", self.failures),
                ("corrupt cache entr(ies)", self.cache_corrupt),
            )
            if value
        ]
        if extras:
            text += ", " + ", ".join(extras)
        return text


class ExecEngine:
    """Plan, deduplicate, cache and execute :class:`SimJob` batches."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        progress: Callable[[str], None] | None = None,
        obs=None,
        resilience: ResilienceConfig | None = None,
        backend: str | None = None,
    ) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise EngineError(f"jobs must be a positive int, got {jobs!r}")
        if backend is not None and backend not in backend_names():
            raise EngineError(
                f"unknown backend {backend!r}; known: {backend_names()}"
            )
        if resilience is None:
            resilience = ResilienceConfig()
        elif not isinstance(resilience, ResilienceConfig):
            raise EngineError(
                f"resilience must be a ResilienceConfig, got {resilience!r}"
            )
        self.jobs = jobs
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.progress = progress
        #: Backend override: when set, every simulating job this engine
        #: resolves runs under this backend (see
        #: :func:`repro.backends.backends`).  ``None`` respects each
        #: job's own ``backend`` field.
        self.backend = backend
        #: Optional :class:`repro.obs.Obs` session; when set, probes are
        #: enabled around every batch and manifests are emitted into it.
        self.obs = obs
        #: Fault-tolerance policy (see :mod:`repro.resilience`).
        self.resilience = resilience
        self.counters = EngineCounters()
        #: Every :class:`FailureRecord` this engine collected (keep-going).
        self.failures: list[FailureRecord] = []
        #: fingerprint -> resolved result (the cross-batch memo).
        self._memo: dict[str, ExecResult] = {}
        #: fingerprint -> failed placeholder, valid for the current batch
        #: only — a later batch gets a fresh shot at the job.
        self._failed: dict[str, ExecResult] = {}
        self._sweep_stale_tmps()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @contextmanager
    def observing(self, obs):
        """Temporarily attach an obs session (``None`` = leave as-is)."""
        if obs is None:
            yield self
            return
        previous = self.obs
        self.obs = obs
        try:
            yield self
        finally:
            self.obs = previous

    def run_jobs(self, jobs: Iterable[SimJob]) -> list[ExecResult]:
        """Resolve a batch; returns results aligned with the input order.

        Transient job failures (crashed workers, broken pools, timeouts)
        are retried per :attr:`resilience`; a job that exhausts its
        attempts raises :class:`~repro.resilience.JobFailure` — or, with
        ``keep_going``, resolves to a failed placeholder
        (``result.ok is False``, ``result.failure`` carries the record)
        while the rest of the batch completes normally.
        """
        ordered = [self._with_backend(job) for job in jobs]
        with probe.recording(self.obs):
            with probe.timer("exec.batch"), trace.span(
                "exec.batch", jobs=len(ordered)
            ):
                return self._resolve(ordered)

    def _with_backend(self, job: SimJob) -> SimJob:
        """Apply the engine's backend override to one simulating job.

        ``trace`` and ``oracle`` jobs never construct a simulator, so
        their identity is left untouched — overriding them would only
        split cache keys across provably identical results.
        """
        if (
            self.backend is None
            or job.backend == self.backend
            or job.kind in ("trace", "oracle")
        ):
            return job
        from dataclasses import replace

        return replace(job, backend=self.backend)

    def _resolve(self, ordered: list[SimJob]) -> list[ExecResult]:
        plan = plan_jobs(ordered)
        self.counters.requested += len(plan.requested)
        probe.counter("exec.requested", len(plan.requested))
        self._failed.clear()

        pending: list[SimJob] = []
        for job in plan.unique:
            if job.fingerprint in self._memo:
                self.counters.memo_hits += 1
                probe.counter("exec.memo_hits")
                self._emit(job, self._memo[job.fingerprint], source="memo")
                continue
            self.counters.unique += 1
            cached = self._cache_read(job)
            if cached is not None:
                self.counters.cache_hits += 1
                probe.counter("exec.cache_hits")
                self._memo[job.fingerprint] = cached
                if self.obs is not None:
                    self.obs.record_job(job, cached)
                self._emit(job, cached)
            else:
                pending.append(job)

        self._execute(pending)
        return [
            self._memo.get(job.fingerprint)
            or self._failed[job.fingerprint]
            for job in ordered
        ]

    def run_map(self, jobs: Mapping) -> dict:
        """Resolve a ``{key: SimJob}`` mapping into ``{key: ExecResult}``.

        The declarative form the experiments use: declare every job of the
        experiment keyed by its table coordinates, submit once, consume.
        """
        keys = list(jobs)
        results = self.run_jobs([jobs[key] for key in keys])
        return dict(zip(keys, results))

    def run_job(self, job: SimJob) -> ExecResult:
        """Resolve a single job."""
        return self.run_jobs([job])[0]

    def stats(self, job: SimJob):
        """Shorthand: the :class:`EnergyStats` of one resolved job."""
        result = self.run_job(job)
        if result.stats is None:
            raise EngineError(f"job {job.label} produced no EnergyStats")
        return result.stats

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _execute(self, pending: list[SimJob]) -> None:
        if not pending:
            return
        if self.jobs > 1 and len(pending) > 1:
            self._execute_pool(pending)
        else:
            self._execute_serial(pending)

    def _execute_serial(self, pending: list[SimJob]) -> None:
        """In-process execution with bounded retries on transient errors."""
        config = self.resilience
        for job in pending:
            attempt = 0
            while True:
                try:
                    result = execute_job(job, attempt=attempt)
                # Sanctioned broad catch: every error is classified and
                # either retried or surfaced as a structured failure.
                except Exception as error:  # lint: disable=R007
                    if self._should_retry(job, attempt, error):
                        attempt += 1
                        time.sleep(
                            backoff_delay(config, job.fingerprint, attempt)
                        )
                        continue
                    self._fail(job, error, attempt + 1)
                    break
                self._store(job, result)
                break

    def _execute_pool(self, pending: list[SimJob]) -> None:
        """Worker-pool execution: retries, timeouts, rebuilds, fallback.

        Jobs run in rounds.  A round submits everything still unresolved
        and harvests results in submission order; a failure classified
        transient re-queues its job for the next round (up to
        ``max_retries``).  A timeout or a ``BrokenProcessPool``
        *condemns* the pool — finished futures are still harvested, the
        rest re-queue, and the pool is rebuilt (``pool_rebuilds`` times)
        before the engine degrades to serial in-process execution for
        whatever remains.
        """
        config = self.resilience
        workers = min(self.jobs, len(pending))
        # Force-enable probes/tracing in the workers iff they are on
        # here; per-job captures come back inside the result payloads.
        initializer = initargs = None
        if probe.ENABLED or trace.ACTIVE:
            initializer = init_worker_observability
            initargs = (probe.ENABLED, trace.ACTIVE, trace.EVERY, trace.CAPACITY)
        attempts: dict[str, int] = {job.fingerprint: 0 for job in pending}
        remaining = list(pending)
        rebuilds_left = config.pool_rebuilds
        pool = self._make_pool(workers, initializer, initargs)
        try:
            while remaining:
                batch, remaining = remaining, []
                condemned = False
                done_at: dict[int, float] = {}
                queued_at = time.perf_counter()
                futures = [
                    pool.submit(execute_payload, job, attempts[job.fingerprint])
                    for job in batch
                ]
                for future in futures:
                    future.add_done_callback(
                        lambda f, d=done_at: d.setdefault(
                            id(f), time.perf_counter()
                        )
                    )
                for job, future in zip(batch, futures):
                    if condemned and not future.done():
                        # The pool is already condemned; don't wait on it.
                        future.cancel()
                        remaining.append(job)
                        continue
                    try:
                        payload = future.result(timeout=config.job_timeout_s)
                    except FuturesTimeoutError:
                        condemned = True
                        self.counters.timeouts += 1
                        probe.counter("exec.timeouts")
                        self._retry_or_fail(
                            job,
                            attempts,
                            remaining,
                            TimeoutError(
                                f"{job.label} exceeded the "
                                f"{config.job_timeout_s}s job timeout"
                            ),
                        )
                        continue
                    except BrokenProcessPool as error:
                        condemned = True
                        self._retry_or_fail(job, attempts, remaining, error)
                        continue
                    # Sanctioned broad catch: a worker raised a real job
                    # error — classify it, retry or record, never swallow.
                    except Exception as error:  # lint: disable=R007
                        self._retry_or_fail(job, attempts, remaining, error)
                        continue
                    result = ExecResult.from_payload(job, payload, "run")
                    finished = done_at.get(id(future), time.perf_counter())
                    # Turnaround minus worker wall time approximates the
                    # time the job sat waiting for a worker slot.
                    queue_wait = max(
                        0.0, finished - queued_at - result.wall_s
                    )
                    self._store(
                        job, result, queue_wait_s=queue_wait, absorb=True
                    )
                if condemned:
                    pool.shutdown(wait=False, cancel_futures=True)
                    if remaining and rebuilds_left > 0:
                        rebuilds_left -= 1
                        self.counters.pool_rebuilds += 1
                        probe.counter("exec.pool_rebuilds")
                        pool = self._make_pool(workers, initializer, initargs)
                    elif remaining:
                        self.counters.serial_fallbacks += 1
                        probe.counter("exec.serial_fallbacks")
                        self._execute_serial(remaining)
                        remaining = []
                elif remaining:
                    # Pure retries (no pool break): back off before the
                    # next round, by the slowest job's ladder.
                    time.sleep(
                        max(
                            backoff_delay(
                                config,
                                job.fingerprint,
                                attempts[job.fingerprint],
                            )
                            for job in remaining
                        )
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _make_pool(
        workers: int, initializer, initargs
    ) -> ProcessPoolExecutor:
        """Build a worker pool, arming observability when requested."""
        if initializer is None:
            return ProcessPoolExecutor(max_workers=workers)
        return ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        )

    def _should_retry(
        self, job: SimJob, attempt: int, error: BaseException
    ) -> bool:
        """Classify ``error``; count and announce the retry if granted."""
        if (
            not classify_transient(error)
            or attempt >= self.resilience.max_retries
        ):
            return False
        self.counters.retries += 1
        probe.counter("exec.retries")
        if self.progress is not None:
            self.progress(
                f"[exec] retry {attempt + 1}/{self.resilience.max_retries} "
                f"{job.label}: {type(error).__name__}: {error}"
            )
        return True

    def _retry_or_fail(
        self,
        job: SimJob,
        attempts: dict[str, int],
        remaining: list[SimJob],
        error: BaseException,
    ) -> None:
        """Pool-path outcome of one failed attempt: re-queue or record."""
        if self._should_retry(job, attempts[job.fingerprint], error):
            attempts[job.fingerprint] += 1
            remaining.append(job)
        else:
            self._fail(job, error, attempts[job.fingerprint] + 1)

    def _fail(self, job: SimJob, error: BaseException, attempts: int) -> None:
        """A job exhausted its attempts: record it, or raise (fail-fast)."""
        record = FailureRecord.from_error(job, error, attempts)
        self.counters.failures += 1
        probe.counter("exec.failures")
        if self.obs is not None:
            self.obs.record_failure(record)
        if not self.resilience.keep_going:
            raise failure_for(record) from error
        self.failures.append(record)
        placeholder = ExecResult.failed(job, record)
        self._failed[job.fingerprint] = placeholder
        self._emit(job, placeholder)

    def _store(
        self,
        job: SimJob,
        result: ExecResult,
        queue_wait_s: float = 0.0,
        absorb: bool = False,
    ) -> None:
        self.counters.executed += 1
        if probe.ENABLED:
            probe.counter("exec.executed")
            if queue_wait_s:
                probe.timing("exec.queue_wait", queue_wait_s)
            # Serial results recorded their probe traffic live; worker
            # results carry it in the payload snapshot and must be merged
            # here, exactly once.
            if absorb:
                probe.absorb(result.obs)
        if absorb and trace.ACTIVE:
            # Same contract for trace events: worker sinks ship their
            # snapshot home and it merges into the parent sink once.
            trace.absorb(result.trace)
        if self.obs is not None:
            self.obs.record_job(job, result, queue_wait_s=queue_wait_s)
        self._memo[job.fingerprint] = result
        self._cache_write(job, result)
        self._emit(job, result)

    # ------------------------------------------------------------------ #
    # on-disk cache
    # ------------------------------------------------------------------ #
    def _cache_path(self, job: SimJob) -> Path | None:
        if self.cache_dir is None:
            return None
        fingerprint = job.fingerprint
        return self.cache_dir / fingerprint[:2] / f"{fingerprint}.json"

    def _cache_read(self, job: SimJob) -> ExecResult | None:
        path = self._cache_path(job)
        if path is None or not path.is_file():
            return None
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None  # unreadable: a miss, never an error
        try:
            document = json.loads(text)
            if (
                document.get("schema") != ENGINE_SCHEMA
                or document.get("fingerprint") != job.fingerprint
            ):
                # A valid document from another schema/code version: a
                # plain miss, overwritten by the fresh result.
                return None
            return ExecResult.from_payload(job, document["payload"], "cache")
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            return None

    def _quarantine(self, path: Path) -> None:
        """Move an unparseable cache file aside as ``<name>.corrupt``.

        Quarantining instead of silently overwriting keeps the evidence
        (torn write? disk fault? foreign writer?) while still treating
        the entry as a miss.
        """
        self.counters.cache_corrupt += 1
        probe.counter("exec.cache_corrupt")
        if self.progress is not None:
            self.progress(f"[exec] quarantined corrupt cache entry {path.name}")
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:  # lint: disable=R007
            pass  # racing reader already moved or removed it

    def _cache_write(self, job: SimJob, result: ExecResult) -> None:
        path = self._cache_path(job)
        if path is None:
            return
        document = {
            "schema": ENGINE_SCHEMA,
            "fingerprint": job.fingerprint,
            "job": job.describe(),
            "payload": result.payload(),
        }
        data = faults.mangle_cache_write(
            job.fingerprint, json.dumps(document, sort_keys=True)
        )
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            faults.maybe_cache_write_error(job.fingerprint)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(data, encoding="utf-8")
            os.replace(tmp, path)  # atomic: concurrent runs share a cache
        except OSError as error:
            # The cache is an accelerator, not a correctness dependency:
            # a failed write must never fail the batch.  Clean our tmp so
            # a flaky disk cannot litter the cache directory.
            self.counters.cache_write_errors += 1
            probe.counter("exec.cache_write_errors")
            if self.progress is not None:
                self.progress(
                    f"[exec] cache write failed for {job.label}: {error}"
                )
            try:
                tmp.unlink(missing_ok=True)
            except OSError:  # lint: disable=R007
                pass  # best-effort cleanup on an already-failing disk

    def _sweep_stale_tmps(self) -> None:
        """Remove orphaned ``*.tmp.<pid>`` files a crashed writer left.

        Only files older than :data:`STALE_TMP_TTL_S` are removed — a
        younger tmp may belong to a live run sharing this cache
        directory.
        """
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return
        # Wall clock by necessity: tmp staleness is judged against file
        # mtimes, which are wall-clock stamps.  Never feeds results.
        cutoff = time.time() - STALE_TMP_TTL_S  # lint: disable=D001
        for tmp in self.cache_dir.glob("*/*.tmp.*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    self.counters.tmp_swept += 1
            except OSError:  # lint: disable=R007
                pass  # vanished mid-sweep (concurrent engine): fine

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def _emit(
        self, job: SimJob, result: ExecResult, source: str | None = None
    ) -> None:
        if self.progress is None:
            return
        resolved = (
            self.counters.memo_hits
            + self.counters.cache_hits
            + self.counters.executed
        )
        rate = result.accesses_per_s
        rate_text = f"{rate / 1000:.1f}k acc/s" if rate else "-"
        self.progress(
            f"[exec {resolved}] {source or result.source:<5} "
            f"{result.wall_s:7.3f}s {rate_text:>12}  {job.label}"
        )

    def summary(self) -> str:
        """One-line counters summary."""
        return f"exec: {self.counters.describe()}"


# --------------------------------------------------------------------- #
# selftest: in-process == subprocess == cache read-back
# --------------------------------------------------------------------- #
def run_selftest(
    size: str = "tiny",
    seed: int = 3,
    progress: Callable[[str], None] | None = None,
) -> list[str]:
    """Assert result parity across every execution mode; returns failures.

    For a representative job of every kind, the measurement must be
    byte-identical (``ExecResult.canonical``) when executed in-process,
    in a worker subprocess, and after an on-disk cache round-trip.  This
    is the determinism contract the parallel executor and the result
    cache both rest on.

    When the array backend is importable, every simulating candidate is
    additionally re-executed under ``backend="array"`` and its canonical
    measurement must match the scalar oracle's byte for byte — the
    cross-backend leg of the same contract.
    """
    import tempfile

    from dataclasses import replace

    from repro.backends import array_available
    from repro.core.config import CNTCacheConfig
    from repro.exec.job import (
        audit_job,
        l2_job,
        oracle_job,
        trace_job,
        workload_job,
    )

    config = CNTCacheConfig()
    candidates = [
        workload_job(config, "stream", size, seed),
        workload_job(config.variant(scheme="baseline"), "stream", size, seed),
        oracle_job(config, "crc32", size, seed),
        l2_job(config, "stream", size, seed),
        audit_job(config, "records", size, seed),
        trace_job("crc32", size, seed),
    ]
    cross_check = array_available()
    failures: list[str] = []
    with ProcessPoolExecutor(max_workers=1) as pool:
        for job in candidates:
            started = time.perf_counter()
            inproc = execute_job(job)
            sub = ExecResult.from_payload(
                job, pool.submit(execute_payload, job).result(), "run"
            )
            with tempfile.TemporaryDirectory() as tmp:
                writer = ExecEngine(cache_dir=tmp)
                writer._memo[job.fingerprint] = inproc
                writer._cache_write(job, inproc)
                reader = ExecEngine(cache_dir=tmp)
                cached = reader.run_job(job)
            ok = (
                inproc.canonical() == sub.canonical() == cached.canonical()
                and cached.source == "cache"
            )
            if not ok:
                failures.append(
                    f"{job.label}: in-process/subprocess/cache results differ"
                )
            if cross_check and job.kind in ("workload", "l2", "audit"):
                mirrored = execute_job(replace(job, backend="array"))
                if mirrored.canonical() != inproc.canonical():
                    ok = False
                    failures.append(
                        f"{job.label}: array backend diverges from the "
                        "scalar oracle"
                    )
            if progress is not None:
                verdict = "ok" if ok else "FAIL"
                progress(
                    f"selftest {job.label:<40} {verdict} "
                    f"({time.perf_counter() - started:.2f}s)"
                )
    return failures

"""Simulation jobs: frozen, content-hashable descriptions of one run.

A :class:`SimJob` is the unit of work of the execution engine.  It names
*what* to simulate — a workload (by name/size/seed, so the trace is
rebuilt deterministically inside the worker) under one
:class:`~repro.core.config.CNTCacheConfig` — and *how* to interpret it
(the job ``kind``).  Because the job is a pure value, two experiments that
need the same measurement produce *equal* jobs, and the planner can run
the simulation once for both.

Content hashing
---------------
:attr:`SimJob.fingerprint` is a SHA-256 over the canonical JSON of the
job description plus two version tags:

* :data:`ENGINE_SCHEMA` — bumped by hand when the meaning of a job kind
  or the result payload layout changes;
* :func:`code_fingerprint` — a hash of every source file that can change
  simulation *semantics* (core simulator, cache substrate, codecs,
  predictor, device models, trace machinery, workload kernels and the
  worker itself), so editing any of them invalidates the on-disk result
  cache automatically.  Harness/rendering code is deliberately excluded:
  editing an experiment's table layout must *not* force a re-simulation.

Config normalization
--------------------
The job constructors route configs through :func:`normalize_config`,
which resets fields a scheme provably ignores (e.g. the prediction window
of a ``baseline`` cache) to their defaults.  Jobs that differ only in
ignored knobs therefore collapse to one simulation — this is what lets a
W-sweep share a single baseline reference run across every sweep point.
The invariants behind the map are pinned by tests/exec/test_job.py.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from functools import cached_property, lru_cache
from pathlib import Path

from repro.backends import backend_names
from repro.core.config import CNTCacheConfig
from repro.schemas import EXEC
from repro.workloads.program import SIZES

#: Version tag of the engine's job/result contract.  Bump the version in
#: :mod:`repro.schemas` when the payload layout or the meaning of a job
#: kind changes; every cached result keyed under the old tag becomes
#: unreadable (a cache miss, never a wrong read).
ENGINE_SCHEMA = EXEC.tag  # exec-v3: result payloads carry a "trace" snapshot

#: The kinds of work a job can describe.
#:
#: ``workload``  replay the workload through a :class:`CNTCache`; result
#:               carries the full :class:`~repro.core.stats.EnergyStats`.
#: ``oracle``    posteriori-minimal energy bound (experiment F8).
#: ``l2``        L1-filtered stream replayed through the config as an L2
#:               (experiment F11); ``params`` carries the L1 geometry.
#: ``audit``     hindsight audit of Algorithm 1's decisions (A5).
#: ``trace``     workload trace characterisation only — no cache, no
#:               config (table T5).
JOB_KINDS = ("workload", "oracle", "l2", "audit", "trace")


class JobError(ValueError):
    """Raised on invalid job construction."""


#: Config fields a scheme ignores, by scheme.  Resetting them to defaults
#: merges equivalent jobs; the equivalences are enforced empirically by
#: tests/exec/test_job.py::TestNormalizationInvariants, so a simulator
#: change that makes a field matter breaks that test, not the results.
_PREDICTOR_FIELDS = (
    "window",
    "delta_t",
    "fifo_depth",
    "drain_per_access",
    "fill_policy",
)
_IGNORED_FIELDS: dict[str, tuple[str, ...]] = {
    "baseline": _PREDICTOR_FIELDS + ("partitions", "dbi_word_bytes"),
    "static-invert": _PREDICTOR_FIELDS + ("partitions", "dbi_word_bytes"),
    "dbi": _PREDICTOR_FIELDS + ("partitions",),
    "fill-greedy": (
        "window",
        "delta_t",
        "fifo_depth",
        "drain_per_access",
        "dbi_word_bytes",
    ),
    "invert": ("partitions", "dbi_word_bytes"),
    "cnt": ("dbi_word_bytes",),
    "cnt-quant": ("dbi_word_bytes",),
    "cnt-shared": ("dbi_word_bytes",),
}

_DEFAULT_CONFIG = CNTCacheConfig()


def normalize_config(config: CNTCacheConfig) -> CNTCacheConfig:
    """Reset scheme-ignored fields to defaults (job-identity canonical form).

    The returned config simulates bit-identically to ``config`` (the reset
    fields are unread by the scheme's code paths) but compares equal to
    every other config that differs only in those fields.
    """
    ignored = _IGNORED_FIELDS.get(config.scheme, ())
    changes = {
        name: getattr(_DEFAULT_CONFIG, name)
        for name in ignored
        if getattr(config, name) != getattr(_DEFAULT_CONFIG, name)
    }
    return config.variant(**changes) if changes else config


#: Packages whose every module can change simulation *semantics* — the
#: simulator core, cache substrate, codecs, predictor, device models,
#: trace machinery, workloads and analysis.  Hashed in this order.
FINGERPRINT_PACKAGES = (
    "analysis",
    "backends",
    "cache",
    "cnfet",
    "core",
    "encoding",
    "predictor",
    "trace",
    "workloads",
)

#: Individual semantics-bearing modules outside those packages: the
#: public facade (``api.py`` constructs the simulator), the harness
#: compute modules jobs dispatch to and the exec worker itself.
#: Repo-relative to ``src/repro``, hashed in this order.
FINGERPRINT_MODULES = (
    "api.py",
    "harness/oracle.py",
    "harness/multilevel.py",
    "harness/runner.py",
    "exec/worker.py",
)

#: Roots of the lint fingerprint-coverage check (rule S002): every module
#: transitively importable from these packages at module level must be
#: fingerprinted or exempt, else editing it could change cached results
#: without invalidating them (a stale-cache hazard).
FINGERPRINT_ROOTS = ("repro.cache", "repro.encoding", "repro.cnfet")

#: Module-name prefixes exempt from the coverage check.  ``repro.obs``
#: is the zero-cost observability switchboard the simulation substrate
#: publishes into: by contract it never feeds values *back* into
#: simulation state, so its code cannot change an ``EnergyStats``
#: result (the <5% disabled-probe overhead bound and the serial ==
#: parallel counter-determinism tests pin that contract).  ``repro.faults``
#: only injects *transient* failures that the engine heals byte-identically
#: (the PR-4 chaos gate).
FINGERPRINT_EXEMPT = ("repro.obs", "repro.faults")


def fingerprint_sources(root: Path | None = None) -> list[Path]:
    """Every source file hashed into :func:`code_fingerprint`, in order.

    ``root`` defaults to the installed ``src/repro`` directory; the lint
    fingerprint-coverage rule passes the tree it is analyzing.
    """
    root = Path(__file__).resolve().parents[1] if root is None else root
    parts: list[Path] = []
    for package in FINGERPRINT_PACKAGES:
        parts.extend(sorted((root / package).rglob("*.py")))
    for name in FINGERPRINT_MODULES:
        parts.append(root.joinpath(*name.split("/")))
    return parts


def fingerprint_module_names(root: Path | None = None) -> frozenset[str]:
    """Dotted module names of every fingerprinted source file.

    The set the lint determinism/coverage rules treat as "simulation
    semantics": ``repro.cache.cache``, ``repro.api``, ... including the
    package modules themselves (``repro.cache`` for ``__init__.py``).
    """
    root = Path(__file__).resolve().parents[1] if root is None else root
    names = set()
    for path in fingerprint_sources(root):
        relative = path.relative_to(root).with_suffix("")
        parts = ("repro", *relative.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        names.add(".".join(parts))
    return frozenset(names)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every source file that affects simulation results.

    Covers :data:`FINGERPRINT_PACKAGES` and :data:`FINGERPRINT_MODULES`;
    harness/rendering code is deliberately excluded — editing an
    experiment's table layout must *not* force a re-simulation.  Lint
    rule S002 statically verifies the list stays transitively closed
    over imports (see docs/STATIC_ANALYSIS.md).  Cached per process —
    the sources of a running interpreter don't change.
    """
    digest = hashlib.sha256()
    root = Path(__file__).resolve().parents[1]  # src/repro
    for path in fingerprint_sources(root):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass(frozen=True)
class SimJob:
    """One simulation, described as a pure value.

    ``config`` is ``None`` only for ``trace`` jobs (characterisation needs
    no cache).  ``params`` carries kind-specific extras as a sorted tuple
    of (name, value) pairs — e.g. the L1 geometry of an ``l2`` job — so
    the job stays hashable and its canonical JSON stays stable.

    ``backend`` names the simulation engine (see
    :func:`repro.backends.backends`).  Backends are differential-tested
    bit-identical, but the field still enters the job identity: a cached
    result honestly records which engine produced it, and a backend bug
    can never masquerade as the oracle's output.
    """

    kind: str
    workload: str
    size: str
    seed: int
    config: CNTCacheConfig | None = None
    params: tuple[tuple[str, int], ...] = field(default=())
    backend: str = "scalar"

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise JobError(f"unknown job kind {self.kind!r}; known: {JOB_KINDS}")
        if self.backend not in backend_names():
            raise JobError(
                f"unknown backend {self.backend!r}; known: {backend_names()}"
            )
        if not self.workload or not isinstance(self.workload, str):
            raise JobError(f"workload must be a non-empty string, got {self.workload!r}")
        if self.size not in SIZES:
            raise JobError(f"unknown size {self.size!r}; known: {SIZES}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise JobError(f"seed must be an int, got {self.seed!r}")
        if self.kind == "trace":
            if self.config is not None:
                raise JobError("trace jobs carry no config")
        elif not isinstance(self.config, CNTCacheConfig):
            raise JobError(f"{self.kind} jobs require a CNTCacheConfig")
        for pair in self.params:
            if (
                not isinstance(pair, tuple)
                or len(pair) != 2
                or not isinstance(pair[0], str)
                or not isinstance(pair[1], int)
            ):
                raise JobError(f"params must be (name, int) pairs, got {pair!r}")

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        """Canonical JSON-ready description (hashed by :attr:`fingerprint`)."""
        return {
            "schema": ENGINE_SCHEMA,
            "code": code_fingerprint(),
            "kind": self.kind,
            "workload": self.workload,
            "size": self.size,
            "seed": self.seed,
            "config": None if self.config is None else self.config.to_dict(),
            "params": [list(pair) for pair in self.params],
            "backend": self.backend,
        }

    @cached_property
    def fingerprint(self) -> str:
        """Content hash of the job: equal jobs <=> equal fingerprints."""
        canonical = json.dumps(
            self.describe(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    @property
    def label(self) -> str:
        """Short human label for progress lines and logs."""
        scheme = self.config.scheme if self.config is not None else "-"
        suffix = "" if self.backend == "scalar" else f"@{self.backend}"
        return (
            f"{self.kind}:{self.workload}/{self.size}/s{self.seed}/{scheme}"
            f"{suffix}"
        )


def job_from_payload(payload: dict) -> SimJob:
    """Rebuild a :class:`SimJob` from its :meth:`SimJob.describe` output.

    The broker transport: a coordinator publishes ``describe()`` as the
    job record, and a worker — possibly a different process on a
    different machine — reconstructs the job to execute it.  Strict by
    design: the schema tag *and* the code fingerprint must match this
    process's own, so a mixed-version fleet fails to claim a job whose
    semantics it could not reproduce, rather than executing it wrongly.
    Raises :class:`JobError` on any mismatch or malformation.
    """
    if not isinstance(payload, dict):
        raise JobError(f"job payload must be a dict, got {type(payload).__name__}")
    if payload.get("schema") != ENGINE_SCHEMA:
        raise JobError(
            f"job payload schema {payload.get('schema')!r} != {ENGINE_SCHEMA!r}"
        )
    if payload.get("code") != code_fingerprint():
        raise JobError(
            "job payload was written under different simulation sources"
        )
    config = payload.get("config")
    try:
        job = SimJob(
            kind=payload["kind"],
            workload=payload["workload"],
            size=payload["size"],
            seed=payload["seed"],
            config=None if config is None else CNTCacheConfig.from_dict(config),
            params=tuple(
                (str(name), int(value)) for name, value in payload["params"]
            ),
            backend=payload["backend"],
        )
    except JobError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise JobError(f"malformed job payload: {error}") from None
    return job


# --------------------------------------------------------------------- #
# constructors (the sanctioned way to build jobs — they normalize)
# --------------------------------------------------------------------- #
def workload_job(
    config: CNTCacheConfig,
    workload: str,
    size: str,
    seed: int,
    backend: str = "scalar",
) -> SimJob:
    """A full simulator replay of one workload under one config."""
    return SimJob(
        "workload", workload, size, seed, normalize_config(config),
        backend=backend,
    )


def oracle_job(
    config: CNTCacheConfig, workload: str, size: str, seed: int
) -> SimJob:
    """The posteriori oracle bound of one workload (F8).

    Only geometry, codec partitioning, energy model and the peripheral
    constant reach the oracle, so the config is canonicalised down to a
    ``cnt`` scheme with default algorithm knobs.
    """
    canonical = config.variant(
        scheme="cnt",
        window=_DEFAULT_CONFIG.window,
        delta_t=_DEFAULT_CONFIG.delta_t,
        fifo_depth=_DEFAULT_CONFIG.fifo_depth,
        drain_per_access=_DEFAULT_CONFIG.drain_per_access,
        fill_policy=_DEFAULT_CONFIG.fill_policy,
        dbi_word_bytes=_DEFAULT_CONFIG.dbi_word_bytes,
    )
    return SimJob("oracle", workload, size, seed, canonical)


def l2_job(
    config: CNTCacheConfig,
    workload: str,
    size: str,
    seed: int,
    l1_size: int = 8 * 1024,
    l1_assoc: int = 2,
    l1_line_size: int = 64,
    backend: str = "scalar",
) -> SimJob:
    """Replay the L1-filtered stream of a workload through ``config`` (F11)."""
    return SimJob(
        "l2",
        workload,
        size,
        seed,
        normalize_config(config),
        params=(
            ("l1_assoc", l1_assoc),
            ("l1_line_size", l1_line_size),
            ("l1_size", l1_size),
        ),
        backend=backend,
    )


def audit_job(
    config: CNTCacheConfig,
    workload: str,
    size: str,
    seed: int,
    backend: str = "scalar",
) -> SimJob:
    """Hindsight-audit Algorithm 1's window decisions on one workload (A5)."""
    if not config.uses_predictor:
        raise JobError(
            f"scheme {config.scheme!r} runs no predictor to audit"
        )
    return SimJob(
        "audit", workload, size, seed, normalize_config(config),
        backend=backend,
    )


def trace_job(workload: str, size: str, seed: int) -> SimJob:
    """Characterise a workload's trace (T5) — no cache involved."""
    return SimJob("trace", workload, size, seed, None)

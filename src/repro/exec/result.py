"""Execution results: what a :class:`~repro.exec.job.SimJob` produced.

An :class:`ExecResult` separates the *measurement* (``stats`` and
``values``, which must be bit-identical however the job ran — in-process,
in a worker process, or read back from the disk cache) from the
*observability* metadata (``wall_s``, ``source``), which naturally varies
between runs and is excluded from :meth:`ExecResult.canonical`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json

from repro.core.stats import EnergyStats
from repro.exec.job import SimJob
from repro.resilience import FailureRecord


class ResultError(ValueError):
    """Raised on malformed result payloads."""


#: Where a result came from (observability only — never hashed).
#: ``broker`` marks a result a *fleet worker* simulated and the
#: coordinator adopted from the shared cache (distributed backend).
#: ``failed`` marks a keep-going placeholder: the job exhausted its
#: attempts and carries a :class:`~repro.resilience.FailureRecord`
#: instead of a measurement.
SOURCES = ("run", "memo", "cache", "broker", "failed")


@dataclass
class ExecResult:
    """The outcome of one executed job.

    ``stats``
        Full :class:`EnergyStats` for ``workload``/``l2`` jobs (``None``
        for kinds that measure no cache energy, and for ``l2`` jobs whose
        filtered stream is empty).
    ``values``
        Kind-specific scalars (oracle bound, audit counters, trace
        characterisation, workload checksum, preload digest...).
    ``wall_s`` / ``source``
        Per-job observability: execution wall time and whether the result
        was simulated (``run``), deduplicated in memory (``memo``) or read
        from the on-disk cache (``cache``).
    ``obs``
        The per-job probe snapshot (counters/timers/events captured by
        :func:`repro.obs.probe.capture` while the job ran) — ``{}`` when
        the job ran with probes disabled.  Like ``wall_s``/``source`` it
        is transport-only observability, excluded from :meth:`canonical`.
    ``trace``
        The per-job trace snapshot (the events captured by
        :func:`repro.obs.trace.capture` while the job ran, tagged with
        the job's label/kind/workload/fingerprint/scheme) — ``{}`` when
        the job ran with tracing disabled.  Transport-only, excluded
        from :meth:`canonical`.
    ``failure``
        ``None`` for real measurements; the structured
        :class:`~repro.resilience.FailureRecord` of a job that exhausted
        its attempts in a keep-going batch (``source == "failed"``,
        ``stats is None``, empty ``values``).
    """

    job: SimJob
    stats: EnergyStats | None = None
    values: dict = field(default_factory=dict)
    wall_s: float = 0.0
    source: str = "run"
    obs: dict = field(default_factory=dict)
    trace: dict = field(default_factory=dict)
    failure: FailureRecord | None = None

    @classmethod
    def failed(cls, job: SimJob, record: FailureRecord) -> "ExecResult":
        """The keep-going placeholder for a job that could not resolve."""
        return cls(job=job, source="failed", failure=record)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    @property
    def ok(self) -> bool:
        """True for real measurements, False for failed placeholders."""
        return self.failure is None

    @property
    def accesses(self) -> int:
        """Demand accesses simulated (0 when the job metered none)."""
        if self.stats is not None:
            return self.stats.accesses
        value = self.values.get("accesses", 0)
        return int(value)

    @property
    def accesses_per_s(self) -> float:
        """Simulation throughput of this job (0 when unknown)."""
        if self.wall_s <= 0:
            return 0.0
        return self.accesses / self.wall_s

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def payload(self) -> dict:
        """JSON-ready measurement + wall time; inverse of :meth:`from_payload`.

        This is both the worker -> parent transport format and the on-disk
        cache format, so every execution mode funnels through the same
        (lossless) serialization.  Failed placeholders are not
        measurements and must never enter either channel.
        """
        if self.failure is not None:
            raise ResultError(
                f"failed results are not serializable: {self.failure.label}"
            )
        return {
            "stats": None if self.stats is None else self.stats.to_dict(),
            "values": dict(self.values),
            "wall_s": self.wall_s,
            "obs": dict(self.obs),
            "trace": dict(self.trace),
        }

    @classmethod
    def from_payload(
        cls, job: SimJob, payload: dict, source: str = "run"
    ) -> "ExecResult":
        """Rebuild a result from :meth:`payload` output."""
        if not isinstance(payload, dict) or set(payload) != {
            "stats",
            "values",
            "wall_s",
            "obs",
            "trace",
        }:
            raise ResultError(f"malformed result payload: {payload!r}")
        if source not in SOURCES:
            raise ResultError(f"unknown source {source!r}; known: {SOURCES}")
        stats = payload["stats"]
        values = payload["values"]
        obs = payload["obs"]
        trace = payload["trace"]
        if not isinstance(values, dict):
            raise ResultError("result values must be a dict")
        if not isinstance(obs, dict):
            raise ResultError("result obs snapshot must be a dict")
        if not isinstance(trace, dict):
            raise ResultError("result trace snapshot must be a dict")
        return cls(
            job=job,
            stats=None if stats is None else EnergyStats.from_dict(stats),
            values=dict(values),
            wall_s=float(payload["wall_s"]),
            source=source,
            obs=dict(obs),
            trace=dict(trace),
        )

    def canonical(self) -> str:
        """Deterministic JSON of the measurement only (no wall/source).

        Two executions of the same job are *correct* iff their canonical
        strings are byte-identical — the property ``--selftest`` and the
        determinism suite assert across process and cache boundaries.
        """
        return json.dumps(
            {
                "stats": None if self.stats is None else self.stats.to_dict(),
                "values": self.values,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

"""Job/plan execution engine: deduplicated, parallel, cached experiment runs.

Experiments *declare* the simulations they need as frozen, content-hashed
:class:`SimJob` values; a :class:`~repro.exec.planner.Planner` dedupes
them and an :class:`ExecEngine` resolves them — via in-memory memo, the
content-addressed on-disk cache, or actual (optionally multi-process)
execution.  Execution is self-healing: transient failures retry with
backoff, broken pools rebuild (then degrade to serial), and keep-going
batches collect structured :class:`FailureRecord` results — see
:mod:`repro.resilience` and docs/RESILIENCE.md.  See docs/EXECUTION.md
for the job model, hash scheme, cache layout and invalidation rules.
"""

from repro.exec.engine import (
    EngineCounters,
    EngineError,
    ExecEngine,
    run_selftest,
)
from repro.exec.job import (
    ENGINE_SCHEMA,
    JOB_KINDS,
    JobError,
    SimJob,
    audit_job,
    code_fingerprint,
    l2_job,
    normalize_config,
    oracle_job,
    trace_job,
    workload_job,
)
from repro.exec.planner import Plan, Planner, plan_jobs
from repro.exec.result import ExecResult, ResultError
from repro.exec.worker import execute_job, execute_payload
from repro.resilience import (
    FailureRecord,
    JobFailure,
    PermanentJobFailure,
    ResilienceConfig,
    TransientJobFailure,
)

__all__ = [
    "ENGINE_SCHEMA",
    "JOB_KINDS",
    "EngineCounters",
    "EngineError",
    "ExecEngine",
    "ExecResult",
    "FailureRecord",
    "JobError",
    "JobFailure",
    "PermanentJobFailure",
    "Plan",
    "Planner",
    "ResilienceConfig",
    "ResultError",
    "SimJob",
    "TransientJobFailure",
    "audit_job",
    "code_fingerprint",
    "execute_job",
    "execute_payload",
    "l2_job",
    "normalize_config",
    "oracle_job",
    "plan_jobs",
    "run_selftest",
    "trace_job",
    "workload_job",
]

"""Job/plan execution engine: deduplicated, parallel, cached experiment runs.

Experiments *declare* the simulations they need as frozen, content-hashed
:class:`SimJob` values; a :class:`~repro.exec.planner.Planner` dedupes
them and an :class:`ExecEngine` resolves them — via in-memory memo, the
content-addressed on-disk cache, or actual (optionally multi-process)
execution.  Execution is self-healing: transient failures retry with
backoff, broken pools rebuild (then degrade to serial), and keep-going
batches collect structured :class:`FailureRecord` results — see
:mod:`repro.resilience` and docs/RESILIENCE.md.  See docs/EXECUTION.md
for the job model, hash scheme, cache layout and invalidation rules.
"""

from repro.exec.backends import (
    ExecBackendError,
    ExecBackendInfo,
    exec_backend_names,
    exec_backends,
    make_exec_backend,
)
from repro.exec.broker import (
    BrokerConfig,
    BrokerError,
    WorkerStats,
    run_worker,
)
from repro.exec.engine import (
    EngineCounters,
    EngineError,
    ExecEngine,
    run_selftest,
)
from repro.exec.job import (
    ENGINE_SCHEMA,
    JOB_KINDS,
    JobError,
    SimJob,
    audit_job,
    code_fingerprint,
    job_from_payload,
    l2_job,
    normalize_config,
    oracle_job,
    trace_job,
    workload_job,
)
from repro.exec.planner import Plan, Planner, plan_jobs
from repro.exec.result import ExecResult, ResultError
from repro.exec.store import ResultStore
from repro.exec.worker import execute_job, execute_payload
from repro.resilience import (
    FailureRecord,
    JobFailure,
    PermanentJobFailure,
    PoisonJobError,
    ResilienceConfig,
    TransientJobFailure,
)

__all__ = [
    "ENGINE_SCHEMA",
    "JOB_KINDS",
    "BrokerConfig",
    "BrokerError",
    "EngineCounters",
    "EngineError",
    "ExecBackendError",
    "ExecBackendInfo",
    "ExecEngine",
    "ExecResult",
    "FailureRecord",
    "JobError",
    "JobFailure",
    "PermanentJobFailure",
    "Plan",
    "Planner",
    "PoisonJobError",
    "ResilienceConfig",
    "ResultError",
    "ResultStore",
    "SimJob",
    "TransientJobFailure",
    "WorkerStats",
    "audit_job",
    "code_fingerprint",
    "exec_backend_names",
    "exec_backends",
    "execute_job",
    "execute_payload",
    "job_from_payload",
    "l2_job",
    "make_exec_backend",
    "normalize_config",
    "oracle_job",
    "plan_jobs",
    "run_selftest",
    "run_worker",
    "trace_job",
    "workload_job",
]

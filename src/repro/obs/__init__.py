"""Observability: probes, run manifests and the pipeline profiler.

Three layers, cheapest first:

* :mod:`repro.obs.probe` — process-global counters/timers/events that
  instrumented code publishes into; **zero cost when disabled** (one
  flag check), so they live permanently in the hot paths.
* :mod:`repro.obs.manifest` — JSONL run manifests (one entry per unique
  job resolution + a batch summary) with a reader, a cross-batch merger
  and a zero-guarded aggregator.
* :mod:`repro.obs.profile` — ``cntcache profile``: replay experiments
  with probes on and render/export the breakdown.

The :class:`Obs` session ties them together and is what every harness
helper accepts through the uniform ``obs=`` keyword:

    obs = Obs(manifest="run.jsonl")
    engine = ExecEngine(jobs=4, obs=obs)
    run_suite(workload_names(), engine=engine)
    print(obs.summary().to_dict())
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    ManifestError,
    ManifestSummary,
    ManifestWriter,
    merge_manifests,
    read_manifest,
    summarize,
)
from repro.obs.probe import ObsScope, counter, event, recording, timer
from repro.obs.profile import (
    PROFILE_SCHEMA,
    ProfileError,
    ProfileReport,
    profile_experiments,
)
from repro.obs.session import Obs

__all__ = [
    "MANIFEST_SCHEMA",
    "PROFILE_SCHEMA",
    "ManifestError",
    "ManifestSummary",
    "ManifestWriter",
    "Obs",
    "ObsScope",
    "ProfileError",
    "ProfileReport",
    "counter",
    "event",
    "merge_manifests",
    "profile_experiments",
    "read_manifest",
    "recording",
    "summarize",
    "timer",
]

"""Observability: probes, traces, manifests, the profiler and benches.

Five layers, cheapest first:

* :mod:`repro.obs.probe` — process-global counters/timers/events/gauges
  that instrumented code publishes into; **zero cost when disabled**
  (one flag check), so they live permanently in the hot paths.
* :mod:`repro.obs.trace` — opt-in bounded ring-buffer event tracer:
  per-access energy-attributed events + lifecycle spans, exported by
  :mod:`repro.obs.export` to Chrome trace-event JSON or collapsed-stack
  energy flamegraphs (``cntcache trace``).
* :mod:`repro.obs.manifest` — JSONL run manifests (one entry per unique
  job resolution + a batch summary) with a reader, a cross-batch merger
  and a zero-guarded aggregator.
* :mod:`repro.obs.profile` — ``cntcache profile``: replay experiments
  with probes on and render/export the breakdown.
* :mod:`repro.obs.bench` — ``cntcache bench``: the recorded benchmark
  trajectory (``BENCH_<n>.json``) and the CI perf/fidelity regression
  gate.

The :class:`Obs` session ties them together and is what every harness
helper accepts through the uniform ``obs=`` keyword:

    obs = Obs(manifest="run.jsonl")
    engine = ExecEngine(jobs=4, obs=obs)
    run_suite(workload_names(), engine=engine)
    print(obs.summary().to_dict())
"""

from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchError,
    BenchRecord,
    append_record,
    compare,
    load_trajectory,
)
from repro.obs.export import (
    chrome_trace,
    collapsed_stacks,
    fleet_chrome_trace,
    write_chrome,
    write_collapsed,
    write_fleet_chrome,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    ManifestError,
    ManifestSummary,
    ManifestWriter,
    merge_manifests,
    read_manifest,
    summarize,
)
from repro.obs.names import METRIC_NAMES, is_registered
from repro.obs.probe import ObsScope, counter, event, gauge, recording, timer
from repro.obs.profile import (
    PROFILE_SCHEMA,
    ProfileError,
    ProfileReport,
    profile_experiments,
)
from repro.obs.session import Obs
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    FleetSnapshot,
    ProcessView,
    TelemetryCollector,
    TelemetryError,
    TelemetryWriter,
    make_trace_id,
    prometheus_lines,
    read_all_frames,
    read_frames,
    span_for,
    telemetry_dir,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceSink,
    canonical_access_events,
    tracing,
)

__all__ = [
    "BENCH_SCHEMA",
    "MANIFEST_SCHEMA",
    "METRIC_NAMES",
    "PROFILE_SCHEMA",
    "TELEMETRY_SCHEMA",
    "TRACE_SCHEMA",
    "BenchError",
    "BenchRecord",
    "FleetSnapshot",
    "ManifestError",
    "ManifestSummary",
    "ManifestWriter",
    "Obs",
    "ObsScope",
    "ProcessView",
    "ProfileError",
    "ProfileReport",
    "TelemetryCollector",
    "TelemetryError",
    "TelemetryWriter",
    "TraceSink",
    "append_record",
    "canonical_access_events",
    "chrome_trace",
    "collapsed_stacks",
    "compare",
    "counter",
    "event",
    "fleet_chrome_trace",
    "gauge",
    "is_registered",
    "load_trajectory",
    "make_trace_id",
    "merge_manifests",
    "profile_experiments",
    "prometheus_lines",
    "read_all_frames",
    "read_frames",
    "read_manifest",
    "recording",
    "span_for",
    "summarize",
    "telemetry_dir",
    "timer",
    "tracing",
    "write_chrome",
    "write_collapsed",
    "write_fleet_chrome",
]

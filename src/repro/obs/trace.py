"""Process-global event tracer: bounded ring buffers of structured events.

This is the deep-inspection layer under :mod:`repro.obs.probe`: where a
probe counter says *how often*, a trace event says *what exactly* — one
record per sampled demand access (set/way, hit/miss, codec decision,
flips and the per-component femtojoule delta of the Eq. 1-6 breakdown)
plus span events for engine/job/phase lifecycles.  Exporters in
:mod:`repro.obs.export` turn a trace into Chrome trace-event JSON or a
collapsed-stack energy flamegraph.

The switchboard mirrors :mod:`repro.obs.probe` exactly:

* :data:`ACTIVE` is the master flag; hot call sites guard with
  ``if trace.ACTIVE:`` so disabled tracing costs one attribute load and
  a falsy branch — the same zero-cost contract the probes ship under.
* :class:`TraceSink` is the accumulator: a bounded ring buffer
  (:data:`CAPACITY` events; older events are evicted and counted as
  dropped, never an error).
* :func:`tracing` pushes a caller-owned sink for a ``with`` block;
  :func:`capture` pushes a fresh anonymous sink iff tracing is already
  active (how the exec worker collects a per-job trace that rides home
  on :attr:`ExecResult.trace`); :func:`enable_in_worker` force-enables
  tracing in pool worker processes.

Sampling: demand-access events are emitted every :data:`EVERY`-th access
(``--trace-every N``).  Energy attribution *telescopes*: each emitted
event carries the energy accumulated since the previous emitted event,
and a final ``finalize`` event carries the residual, so the per-event
femtojoules sum to the run's :class:`~repro.core.stats.EnergyStats`
total at any sampling rate.

Determinism: ``access``/``finalize`` events carry no wall-clock fields
(they are indexed by access number), so per-job traces are identical
between serial and worker-pool execution;
:func:`canonical_access_events` produces the order-independent form the
determinism suite compares.  ``span`` events do carry wall time and are
excluded from the canonical form.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterable, Iterator

from repro.schemas import TRACE

#: Trace snapshot format tag; bump the version in :mod:`repro.schemas`
#: when event fields change incompatibly.
TRACE_SCHEMA = TRACE.tag

#: Master switch: trace emission happens iff True.  Hot call sites read
#: this directly (``if trace.ACTIVE:``) to skip even the function call.
ACTIVE = False

#: Emit one demand-access event per EVERY accesses (1 = every access).
EVERY = 1

#: Default ring-buffer capacity of a sink, in events.
CAPACITY = 65536

#: Active sinks; every emission records into all of them.
_SINKS: list["TraceSink"] = []

#: True in worker processes force-enabled by :func:`enable_in_worker`.
_FORCED = False

#: Event kinds whose fields are per-job deterministic (no wall clock).
CANONICAL_KINDS = ("access", "finalize")


class TraceSink:
    """A bounded ring buffer of trace events.

    ``events``
        The most recent ``capacity`` events, oldest first.
    ``emitted``
        Total events ever recorded (``emitted - len(events)`` were
        evicted by the ring bound).
    """

    __slots__ = ("events", "emitted", "capacity")

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is None:
            capacity = CAPACITY
        if not isinstance(capacity, int) or capacity < 1:
            raise ValueError(f"capacity must be a positive int: {capacity!r}")
        self.capacity = capacity
        self.events: deque[dict] = deque(maxlen=capacity)
        self.emitted = 0

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound (recorded minus retained)."""
        return self.emitted - len(self.events)

    def record(self, event: dict) -> None:
        """Append one event (evicting the oldest when full)."""
        self.events.append(event)
        self.emitted += 1

    def snapshot(self) -> dict:
        """JSON-ready copy (the ``ExecResult.trace`` payload slot)."""
        return {
            "schema": TRACE_SCHEMA,
            "events": [dict(event) for event in self.events],
            "emitted": self.emitted,
            "dropped": self.dropped,
        }

    def absorb(self, snapshot: dict) -> None:
        """Merge a :meth:`snapshot` (e.g. from a worker) into this sink.

        The source's evicted-event count carries over, so ``dropped``
        stays truthful across the transport hop.
        """
        events = snapshot.get("events", [])
        already_dropped = int(snapshot.get("dropped", 0))
        for event in events:
            self.record(dict(event))
        self.emitted += already_dropped


def _sync() -> None:
    global ACTIVE
    ACTIVE = _FORCED or bool(_SINKS)


# ------------------------------------------------------------------ #
# emission (the instrumented code's API)
# ------------------------------------------------------------------ #
def emit(kind: str, **fields: Any) -> None:
    """Record one ``{"kind": kind, **fields}`` event (no-op when off)."""
    if not ACTIVE:
        return
    event = {"kind": kind, **fields}
    for sink in _SINKS:
        sink.record(event)


def emit_event(event: dict) -> None:
    """Record a pre-built event dict into every active sink."""
    if not ACTIVE:
        return
    for sink in _SINKS:
        sink.record(event)


@contextmanager
def span(name: str, **fields: Any) -> Iterator[None]:
    """Trace a ``with`` block as one complete span event (no-op when off).

    Spans carry wall-clock ``ts_us``/``dur_us`` microsecond fields (the
    Chrome trace-event convention) and are therefore excluded from
    :func:`canonical_access_events`.
    """
    if not ACTIVE:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        ended = time.perf_counter()
        emit(
            "span",
            name=name,
            ts_us=started * 1e6,
            dur_us=(ended - started) * 1e6,
            **fields,
        )


# ------------------------------------------------------------------ #
# switchboard management
# ------------------------------------------------------------------ #
@contextmanager
def tracing(
    sink: "TraceSink | None",
    every: int | None = None,
    capacity: int | None = None,
) -> Iterator["TraceSink | None"]:
    """Record trace events into ``sink`` for the block (None = no-op).

    ``every``/``capacity`` optionally override the module sampling
    configuration for the block (restored on exit); ``capacity`` applies
    to sinks created *inside* the block (per-job captures), not to
    ``sink`` itself, which was already sized at construction.
    """
    global ACTIVE
    if sink is None or any(active is sink for active in _SINKS):
        yield sink
        return
    previous = (EVERY, CAPACITY)
    if every is not None or capacity is not None:
        configure(every=every, capacity=capacity)
    _SINKS.append(sink)
    ACTIVE = True
    try:
        yield sink
    finally:
        _SINKS.remove(sink)
        _sync()
        configure(every=previous[0], capacity=previous[1])


@contextmanager
def capture() -> Iterator["TraceSink | None"]:
    """A fresh nested sink, iff tracing is active (else yields ``None``)."""
    global ACTIVE
    if not ACTIVE:
        yield None
        return
    sink = TraceSink()
    _SINKS.append(sink)
    try:
        yield sink
    finally:
        _SINKS.remove(sink)
        _sync()


def configure(every: int | None = None, capacity: int | None = None) -> None:
    """Set the sampling stride and/or default ring capacity."""
    global EVERY, CAPACITY
    if every is not None:
        if not isinstance(every, int) or every < 1:
            raise ValueError(f"every must be a positive int: {every!r}")
        EVERY = every
    if capacity is not None:
        if not isinstance(capacity, int) or capacity < 1:
            raise ValueError(f"capacity must be a positive int: {capacity!r}")
        CAPACITY = capacity


def enable_in_worker(
    every: int = 1, capacity: int | None = None
) -> None:
    """``ProcessPoolExecutor`` initializer: force tracing on in-process.

    Workers have no parent sink; per-job :func:`capture` sinks collect
    the events and ship them home through the result payload.
    """
    global _FORCED, ACTIVE
    configure(every=every, capacity=capacity)
    _FORCED = True
    ACTIVE = True


def absorb(snapshot: dict) -> None:
    """Merge a worker-produced trace snapshot into every active sink."""
    if not ACTIVE or not snapshot or not snapshot.get("events"):
        return
    for sink in _SINKS:
        sink.absorb(snapshot)


# ------------------------------------------------------------------ #
# canonicalization (the determinism suite's comparison form)
# ------------------------------------------------------------------ #
def canonical_access_events(traces: Iterable[dict]) -> list[str]:
    """Order-independent JSON lines of the deterministic event kinds.

    ``traces`` is an iterable of per-job snapshots (``ExecResult.trace``).
    Events are restricted to :data:`CANONICAL_KINDS` (no wall clock) and
    sorted by (job fingerprint, access index), so serial and worker-pool
    runs of the same jobs produce byte-identical lists.
    """
    keyed: list[tuple[str, int, str]] = []
    for trace in traces:
        if not trace:
            continue
        fingerprint = str(trace.get("fingerprint", ""))
        for event in trace.get("events", []):
            if event.get("kind") not in CANONICAL_KINDS:
                continue
            keyed.append(
                (
                    fingerprint,
                    int(event.get("index", -1)),
                    json.dumps(event, sort_keys=True),
                )
            )
    keyed.sort()
    return [line for _, _, line in keyed]


__all__ = [
    "ACTIVE",
    "CANONICAL_KINDS",
    "CAPACITY",
    "EVERY",
    "TRACE_SCHEMA",
    "TraceSink",
    "absorb",
    "canonical_access_events",
    "capture",
    "configure",
    "emit",
    "emit_event",
    "enable_in_worker",
    "span",
    "tracing",
]

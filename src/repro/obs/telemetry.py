"""Live fleet telemetry: a streaming NDJSON event bus over a directory.

The broker (:mod:`repro.exec.broker`) made runs multi-process, but every
observability surface it shipped is post-hoc: manifests and probe
counters are only readable after the batch completes.  This module is
the live layer — each participant (coordinator and workers) appends
bounded-rate telemetry *frames* to its own file under a shared
directory (``<broker>/telemetry/`` by default)::

    <dir>/<identity>.ndjson     one append-only frame stream per process

Three frame types, all JSON objects tagged ``obs-telemetry-v1``:

* ``hello`` — the process introduces itself (pid, host, role, declared
  heartbeat interval, coordinator trace id);
* ``heartbeat`` — rate-bounded gauges: state, current job, jobs done,
  accesses/s, energy so far, resource snapshot (RSS, CPU seconds);
* ``lifecycle`` — one event per state transition: ``publish``,
  ``claim``, ``reclaim``, ``finish``, ``fail``, ``quarantine``,
  ``adopt``, ``drain``, ``exit``.

Frames are wall-clock stamped (sanctioned: this module is coordination
and display only — nothing here may feed a fingerprint, a cache key or
a measurement, so byte-identity of brokered runs is untouched) and the
writer is deliberately loss-tolerant: a failed write disables the
writer rather than ever failing the run.

The read side tails those files *live*: :func:`read_frames` consumes
complete lines only (a torn, mid-write final line is skipped and
counted under ``obs.torn_lines``), and :class:`TelemetryCollector`
incrementally merges every stream into a :class:`FleetSnapshot` —
persisting per-file offsets so a restarted collector resumes without
re-counting a single frame.  ``cntcache top`` / ``status`` /
``metrics`` render that snapshot as an ANSI dashboard, a one-shot
report, or Prometheus text exposition.

Cross-process trace correlation rides the same rails:
:func:`make_trace_id` mints the coordinator's run-level trace id (a
sha256 of identity + wall-clock nanoseconds — deterministic machinery,
no ``uuid``/``random``, lint D002) and :func:`span_for` derives one
span id per job fingerprint, so the coordinator, every worker, manifest
entries and trace snapshots all agree on ids without a handshake.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TextIO

from repro.obs import probe
from repro.schemas import TELEMETRY

#: Version tag of the telemetry frame layout.
TELEMETRY_SCHEMA = TELEMETRY.tag

#: Frame stream filename suffix (one file per process identity).
SUFFIX = ".ndjson"

#: Default minimum spacing between heartbeat frames, seconds.
DEFAULT_INTERVAL_S = 1.0

#: A process is presumed gone this many declared intervals (plus slack)
#: after its last frame.
STALE_INTERVALS = 3.0
STALE_SLACK_S = 2.0

#: The sanctioned lifecycle event vocabulary (typo guard).
LIFECYCLE_EVENTS = frozenset(
    {
        "publish",
        "claim",
        "reclaim",
        "finish",
        "fail",
        "quarantine",
        "adopt",
        "drain",
        "exit",
    }
)

#: Collector state file (offsets + merged views); the leading dot keeps
#: it out of the ``*.ndjson`` stream glob.
STATE_NAME = ".collector-state.json"


class TelemetryError(ValueError):
    """Raised on invalid telemetry configuration or use."""


def _wall_now() -> float:
    """Wall-clock seconds.  Display/coordination only — frames never
    feed fingerprints, cache keys or measurements (and this module is
    outside lint D001's fingerprinted scope for exactly that reason)."""
    return time.time()


def telemetry_dir(root: str | Path) -> Path:
    """The telemetry directory under a broker root."""
    return Path(root) / "telemetry"


def default_identity(role: str) -> str:
    """A stable, filesystem-safe process identity: ``<role>-<host>-<pid>``."""
    raw = f"{role}-{socket.gethostname()}-{os.getpid()}"
    return re.sub(r"[^A-Za-z0-9._-]", "-", raw)


def make_trace_id(identity: str) -> str:
    """Mint a run-level trace id for ``identity``.

    sha256 of identity + wall-clock nanoseconds: unique per process per
    run without ``uuid``/``random`` (lint D002), and strictly a
    correlation label — it never enters a fingerprint or a result.
    """
    blob = f"{identity}:{time.time_ns()}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def span_for(trace_id: str, fingerprint: str) -> str:
    """The span id of one job under ``trace_id`` (derivable by anyone
    who knows both, so workers and coordinator agree without a
    handshake)."""
    blob = f"{trace_id}/{fingerprint}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _resource_snapshot() -> dict[str, float]:
    """Best-effort RSS/CPU of this process (empty where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return {}
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "rss_kb": float(usage.ru_maxrss),
        "cpu_s": round(usage.ru_utime + usage.ru_stime, 3),
    }


# --------------------------------------------------------------------- #
# writer
# --------------------------------------------------------------------- #
class TelemetryWriter:
    """Appends rate-bounded telemetry frames to one per-process file.

    The write path must never hurt the run it observes: the file is
    opened lazily (constructing a writer creates nothing on disk), every
    frame is one flushed ``write`` of one line, heartbeats are bounded
    to at most one per ``interval_s``, and the first ``OSError``
    permanently disables the writer (counted under
    ``telemetry.write_errors``) instead of propagating.

    ``declared_interval_s`` is the *promise* recorded in frames — the
    largest heartbeat gap a live process should ever show (readers
    derive liveness from it).  It defaults to ``interval_s`` but e.g.
    workers raise it to their lease heartbeat period, whose thread is
    what keeps frames flowing during a long job.
    """

    def __init__(
        self,
        directory: str | Path,
        identity: str | None = None,
        role: str = "worker",
        interval_s: float = DEFAULT_INTERVAL_S,
        declared_interval_s: float | None = None,
        trace_id: str | None = None,
    ) -> None:
        if interval_s < 0:
            raise TelemetryError(f"interval_s must be >= 0, got {interval_s!r}")
        self.directory = Path(directory)
        self.role = role
        self.identity = identity or default_identity(role)
        self.interval_s = float(interval_s)
        self.declared_interval_s = float(
            max(
                interval_s
                if declared_interval_s is None
                else declared_interval_s,
                interval_s,
            )
        )
        #: Run-level trace id stamped into frames (the engine mints one
        #: for coordinators; workers leave it ``None`` — their lifecycle
        #: frames carry per-job ids from the claimed record instead).
        self.trace_id = trace_id
        self.path = self.directory / f"{self.identity}{SUFFIX}"
        self.frames_written = 0
        self.heartbeats_suppressed = 0
        self._file: TextIO | None = None
        self._broken = False
        self._hello_sent = False
        self._last_heartbeat: float | None = None
        self._lock = threading.Lock()

    # -------------------------------------------------------------- #
    # frame emission
    # -------------------------------------------------------------- #
    @property
    def due(self) -> bool:
        """True when a non-forced heartbeat would be emitted now.

        Callers with expensive gauges (queue-depth globs) check this
        first so the cost is only paid when a frame will actually land.
        """
        if self._broken:
            return False
        if self._last_heartbeat is None:
            return True
        return time.monotonic() - self._last_heartbeat >= self.interval_s

    def hello(self, **fields: object) -> None:
        """Introduce this process (emitted once, before any other frame)."""
        with self._lock:
            self._hello_locked(fields)

    def heartbeat(
        self, state: str, force: bool = False, **gauges: object
    ) -> bool:
        """Emit one gauge frame; returns whether it was written.

        Rate-bounded: at most one per ``interval_s`` unless ``force``
        (used for first/last frames, where staleness math needs the
        sample).  ``gauges`` are JSON-ready point-in-time values
        (current job label, jobs done, accesses/s, energy so far...).
        """
        with self._lock:
            if self._broken:
                return False
            now = time.monotonic()
            if (
                not force
                and self._last_heartbeat is not None
                and now - self._last_heartbeat < self.interval_s
            ):
                self.heartbeats_suppressed += 1
                probe.counter("telemetry.suppressed")
                return False
            self._hello_locked({})
            frame: dict[str, Any] = {
                "type": "heartbeat",
                "state": str(state),
                "interval": self.declared_interval_s,
            }
            frame.update(_resource_snapshot())
            if gauges:
                frame["gauges"] = dict(gauges)
            self._emit(frame)
            self._last_heartbeat = now
            return not self._broken

    def lifecycle(self, event: str, **fields: object) -> None:
        """Emit one lifecycle frame (``claim``/``finish``/``reclaim``...)."""
        if event not in LIFECYCLE_EVENTS:
            raise TelemetryError(
                f"unknown lifecycle event {event!r}; "
                f"known: {sorted(LIFECYCLE_EVENTS)}"
            )
        with self._lock:
            if self._broken:
                return
            self._hello_locked({})
            frame: dict[str, Any] = {"type": "lifecycle", "event": event}
            frame.update(fields)
            self._emit(frame)

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _hello_locked(self, fields: dict[str, object]) -> None:
        if self._hello_sent or self._broken:
            return
        self._hello_sent = True  # before _emit: a broken pipe stays quiet
        frame: dict[str, Any] = {
            "type": "hello",
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "interval": self.declared_interval_s,
        }
        if self.trace_id is not None:
            frame["trace_id"] = self.trace_id
        frame.update(fields)
        self._emit(frame)

    def _emit(self, frame: dict[str, Any]) -> None:
        frame.setdefault("schema", TELEMETRY_SCHEMA)
        frame.setdefault("ts", _wall_now())
        frame.setdefault("proc", self.identity)
        frame.setdefault("role", self.role)
        try:
            if self._file is None:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._file = self.path.open("a", encoding="utf-8")
            self._file.write(json.dumps(frame, sort_keys=True) + "\n")
            self._file.flush()
        except OSError:
            # Telemetry must never fail the run it observes: first write
            # error retires the writer for good (and is itself counted).
            self._broken = True
            probe.counter("telemetry.write_errors")
            return
        self.frames_written += 1
        probe.counter("telemetry.frames")

    def close(self) -> None:
        """Flush and close the stream (idempotent; the writer stays usable
        and will transparently reopen in append mode if emitted to again)."""
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:  # lint: disable=R007
                    pass  # nothing left to do with a dying handle
                self._file = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# --------------------------------------------------------------------- #
# reader
# --------------------------------------------------------------------- #
def read_frames(
    path: str | Path, offset: int = 0
) -> tuple[list[dict[str, Any]], int, int]:
    """Parse frames from ``path`` starting at byte ``offset``.

    Returns ``(frames, new_offset, skipped)``.  Only *complete* lines
    (terminated by a newline) are consumed — ``new_offset`` never splits
    a record, so a live writer's torn final line is simply left for the
    next poll.  A complete line that fails to parse (poisoned, foreign
    schema) is skipped and counted, both in the returned ``skipped`` and
    under the ``obs.torn_lines`` probe counter.
    """
    path = Path(path)
    try:
        with path.open("rb") as stream:
            stream.seek(offset)
            blob = stream.read()
    except OSError:
        return [], offset, 0
    end = blob.rfind(b"\n")
    if end < 0:
        return [], offset, 0  # nothing complete yet (mid-write tail)
    complete, new_offset = blob[: end + 1], offset + end + 1
    frames: list[dict[str, Any]] = []
    skipped = 0
    for line in complete.split(b"\n"):
        if not line.strip():
            continue
        try:
            frame = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            skipped += 1
            probe.counter("obs.torn_lines")
            continue
        if (
            not isinstance(frame, dict)
            or frame.get("schema") != TELEMETRY_SCHEMA
        ):
            skipped += 1
            probe.counter("obs.torn_lines")
            continue
        frames.append(frame)
    return frames, new_offset, skipped


def read_all_frames(directory: str | Path) -> list[dict[str, Any]]:
    """Every complete frame under ``directory``, merged and time-ordered
    (the batch entry point the fleet Chrome-trace exporter uses)."""
    frames: list[dict[str, Any]] = []
    for path in sorted(Path(directory).glob(f"*{SUFFIX}")):
        found, _, _ = read_frames(path)
        frames.extend(found)
    frames.sort(key=lambda frame: float(frame.get("ts", 0.0)))
    return frames


# --------------------------------------------------------------------- #
# merged views
# --------------------------------------------------------------------- #
@dataclass
class ProcessView:
    """The collector's rolling view of one fleet process."""

    identity: str
    role: str = "worker"
    pid: int | None = None
    host: str | None = None
    state: str = "unknown"
    first_ts: float = 0.0
    last_ts: float = 0.0
    interval: float = DEFAULT_INTERVAL_S
    trace_id: str | None = None
    #: Last heartbeat's gauge payload (job label, jobs done, acc/s...).
    gauges: dict[str, Any] = field(default_factory=dict)
    #: lifecycle event -> count.
    events: dict[str, int] = field(default_factory=dict)
    frames: int = 0

    def alive(self, now: float) -> bool:
        """Liveness by staleness against the *declared* heartbeat gap."""
        if self.state == "exited":
            return False
        horizon = STALE_INTERVALS * max(self.interval, 0.1) + STALE_SLACK_S
        return now - self.last_ts <= horizon

    def absorb(self, frame: dict[str, Any]) -> None:
        """Fold one frame into this view."""
        ts = float(frame.get("ts", 0.0))
        if not self.first_ts:
            self.first_ts = ts
        self.last_ts = max(self.last_ts, ts)
        self.frames += 1
        kind = frame.get("type")
        if kind == "hello":
            pid = frame.get("pid")
            self.pid = int(pid) if isinstance(pid, (int, float)) else self.pid
            host = frame.get("host")
            self.host = str(host) if host is not None else self.host
            trace_id = frame.get("trace_id")
            if trace_id is not None:
                self.trace_id = str(trace_id)
            self.interval = float(frame.get("interval", self.interval))
        elif kind == "heartbeat":
            self.state = str(frame.get("state", self.state))
            self.interval = float(frame.get("interval", self.interval))
            gauges = frame.get("gauges")
            if isinstance(gauges, dict):
                self.gauges.update(gauges)
            for name in ("rss_kb", "cpu_s"):
                if name in frame:
                    self.gauges[name] = frame[name]
        elif kind == "lifecycle":
            event = str(frame.get("event", "?"))
            self.events[event] = self.events.get(event, 0) + 1
            if event == "exit":
                self.state = "exited"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dump; inverse of :meth:`from_dict`."""
        return {
            "identity": self.identity,
            "role": self.role,
            "pid": self.pid,
            "host": self.host,
            "state": self.state,
            "first_ts": self.first_ts,
            "last_ts": self.last_ts,
            "interval": self.interval,
            "trace_id": self.trace_id,
            "gauges": dict(self.gauges),
            "events": dict(self.events),
            "frames": self.frames,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ProcessView":
        view = cls(identity=str(payload.get("identity", "?")))
        view.role = str(payload.get("role", "worker"))
        pid = payload.get("pid")
        view.pid = int(pid) if isinstance(pid, (int, float)) else None
        host = payload.get("host")
        view.host = None if host is None else str(host)
        view.state = str(payload.get("state", "unknown"))
        view.first_ts = float(payload.get("first_ts", 0.0))
        view.last_ts = float(payload.get("last_ts", 0.0))
        view.interval = float(payload.get("interval", DEFAULT_INTERVAL_S))
        trace_id = payload.get("trace_id")
        view.trace_id = None if trace_id is None else str(trace_id)
        gauges = payload.get("gauges")
        view.gauges = dict(gauges) if isinstance(gauges, dict) else {}
        events = payload.get("events")
        view.events = (
            {str(k): int(v) for k, v in events.items()}
            if isinstance(events, dict)
            else {}
        )
        view.frames = int(payload.get("frames", 0))
        return view


@dataclass
class FleetSnapshot:
    """One merged point-in-time view of the whole fleet."""

    ts: float
    procs: list[ProcessView] = field(default_factory=list)
    #: Broker work-queue depth (published, unclaimed-or-leased records);
    #: ``None`` when no broker directory is visible.
    queue_depth: int | None = None
    active_leases: int | None = None
    quarantined: int | None = None
    frames: int = 0
    torn_lines: int = 0
    #: scheme -> fJ total, deduplicated across at-least-once finishes.
    energy_by_scheme: dict[str, float] = field(default_factory=dict)

    @property
    def workers(self) -> list[ProcessView]:
        """Worker views, stable identity order."""
        return [proc for proc in self.procs if proc.role == "worker"]

    @property
    def coordinators(self) -> list[ProcessView]:
        """Coordinator views, stable identity order."""
        return [proc for proc in self.procs if proc.role == "coordinator"]

    @property
    def live_workers(self) -> int:
        """Workers currently heartbeating within their declared gap."""
        return sum(1 for proc in self.workers if proc.alive(self.ts))

    @property
    def trace_id(self) -> str | None:
        """The most recently announced coordinator trace id."""
        latest: ProcessView | None = None
        for proc in self.coordinators:
            if proc.trace_id is None:
                continue
            if latest is None or proc.first_ts > latest.first_ts:
                latest = proc
        return None if latest is None else latest.trace_id

    @property
    def jobs_done(self) -> int:
        """Fleet-wide finished-job total (lifecycle ``finish`` events)."""
        return sum(proc.events.get("finish", 0) for proc in self.procs)

    def _worker_rate(self, proc: ProcessView) -> float:
        elapsed = proc.last_ts - proc.first_ts
        done = proc.events.get("finish", 0)
        return done / elapsed if elapsed > 0 and done else 0.0

    @property
    def eta_s(self) -> float | None:
        """Seconds to drain the visible queue at the live finish rate."""
        if self.queue_depth is None:
            return None
        remaining = self.queue_depth
        rate = sum(
            self._worker_rate(proc)
            for proc in self.workers
            if proc.alive(self.ts)
        )
        if rate <= 0:
            return None
        return remaining / rate

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dump (the ``cntcache status --json`` payload)."""
        return {
            "schema": TELEMETRY_SCHEMA,
            "ts": self.ts,
            "queue_depth": self.queue_depth,
            "active_leases": self.active_leases,
            "quarantined": self.quarantined,
            "frames": self.frames,
            "torn_lines": self.torn_lines,
            "live_workers": self.live_workers,
            "jobs_done": self.jobs_done,
            "eta_s": self.eta_s,
            "trace_id": self.trace_id,
            "energy_by_scheme": dict(self.energy_by_scheme),
            "procs": [proc.to_dict() for proc in self.procs],
        }

    def render(self) -> str:
        """The ``cntcache top`` screen: fleet table + queue counters."""
        lines: list[str] = []
        trace = f"  trace {self.trace_id[:12]}" if self.trace_id else ""
        stamp = time.strftime("%H:%M:%S", time.localtime(self.ts))
        lines.append(f"cntcache fleet @ {stamp}{trace}")
        queue = "-" if self.queue_depth is None else str(self.queue_depth)
        leases = "-" if self.active_leases is None else str(self.active_leases)
        quarantined = (
            "-" if self.quarantined is None else str(self.quarantined)
        )
        eta = "-" if self.eta_s is None else f"~{self.eta_s:.0f}s"
        lines.append(
            f"queue {queue} pending, {leases} leased, "
            f"{quarantined} quarantined, eta {eta}"
        )
        lines.append(
            f"fleet {self.live_workers} live / {len(self.workers)} worker(s), "
            f"{self.jobs_done} job(s) done, {self.frames} frame(s), "
            f"{self.torn_lines} torn line(s)"
        )
        lines.append("")
        lines.append(
            f"{'PROCESS':<28} {'ROLE':<12} {'STATE':<9} "
            f"{'DONE':>5} {'ACC/S':>10} {'FJ':>12}  JOB"
        )
        for proc in self.procs:
            # A clean "exited" is not stale — only a silent-but-unexited
            # process earns the flag.
            live = (
                " (stale)"
                if proc.state != "exited" and not proc.alive(self.ts)
                else ""
            )
            rate = float(proc.gauges.get("accesses_per_s", 0.0) or 0.0)
            rate_text = f"{rate / 1000.0:.1f}k" if rate else "-"
            energy = float(proc.gauges.get("energy_fj", 0.0) or 0.0)
            energy_text = f"{energy:.3g}" if energy else "-"
            job = str(proc.gauges.get("job") or "-")
            lines.append(
                f"{proc.identity[:28]:<28} {proc.role:<12} "
                f"{(proc.state + live)[:16]:<9} "
                f"{proc.events.get('finish', 0):>5} {rate_text:>10} "
                f"{energy_text:>12}  {job}"
            )
        if self.energy_by_scheme:
            parts = ", ".join(
                f"{scheme} {fj:.4g} fJ"
                for scheme, fj in sorted(self.energy_by_scheme.items())
            )
            lines.append("")
            lines.append(f"energy per scheme: {parts}")
        reclaims = sum(proc.events.get("reclaim", 0) for proc in self.procs)
        fails = sum(proc.events.get("fail", 0) for proc in self.procs)
        quarantines = sum(
            proc.events.get("quarantine", 0) for proc in self.procs
        )
        lines.append(
            f"lifecycle: {reclaims} reclaim(s), {fails} failed attempt(s), "
            f"{quarantines} quarantine event(s)"
        )
        return "\n".join(lines)


def prometheus_lines(snapshot: FleetSnapshot) -> list[str]:
    """Prometheus text-exposition lines for one fleet snapshot."""

    def esc(value: str) -> str:
        return value.replace("\\", "\\\\").replace('"', '\\"')

    lines = [
        "# HELP cntcache_worker_up 1 while the worker heartbeats "
        "within its declared interval",
        "# TYPE cntcache_worker_up gauge",
    ]
    for proc in snapshot.workers:
        lines.append(
            f'cntcache_worker_up{{worker="{esc(proc.identity)}"}} '
            f"{1 if proc.alive(snapshot.ts) else 0}"
        )
    lines += [
        "# HELP cntcache_worker_jobs_done_total finished jobs per worker",
        "# TYPE cntcache_worker_jobs_done_total counter",
    ]
    for proc in snapshot.workers:
        lines.append(
            f'cntcache_worker_jobs_done_total{{worker="{esc(proc.identity)}"}} '
            f"{proc.events.get('finish', 0)}"
        )
    lines += [
        "# HELP cntcache_worker_accesses_per_s last reported "
        "simulation throughput",
        "# TYPE cntcache_worker_accesses_per_s gauge",
    ]
    for proc in snapshot.workers:
        rate = float(proc.gauges.get("accesses_per_s", 0.0) or 0.0)
        lines.append(
            f'cntcache_worker_accesses_per_s{{worker="{esc(proc.identity)}"}} '
            f"{rate:g}"
        )
    lines += [
        "# HELP cntcache_energy_fj_total metered energy per scheme, fJ",
        "# TYPE cntcache_energy_fj_total counter",
    ]
    for scheme, fj in sorted(snapshot.energy_by_scheme.items()):
        lines.append(
            f'cntcache_energy_fj_total{{scheme="{esc(scheme)}"}} {fj:g}'
        )
    scalars: list[tuple[str, str, float | int | None]] = [
        ("cntcache_broker_queue_depth", "gauge", snapshot.queue_depth),
        ("cntcache_broker_active_leases", "gauge", snapshot.active_leases),
        ("cntcache_broker_quarantined", "gauge", snapshot.quarantined),
        ("cntcache_fleet_live_workers", "gauge", snapshot.live_workers),
        ("cntcache_fleet_jobs_done_total", "counter", snapshot.jobs_done),
        ("cntcache_telemetry_frames_total", "counter", snapshot.frames),
        (
            "cntcache_telemetry_torn_lines_total",
            "counter",
            snapshot.torn_lines,
        ),
    ]
    for name, kind, value in scalars:
        if value is None:
            continue
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {value:g}")
    return lines


# --------------------------------------------------------------------- #
# collector
# --------------------------------------------------------------------- #
def locate(path: str | Path) -> tuple[Path, Path | None]:
    """Resolve a user-supplied directory to ``(telemetry_dir, broker_root)``.

    Accepts either a broker root (has or will have a ``telemetry/``
    subdirectory next to ``jobs/``) or a bare telemetry directory; the
    broker root is ``None`` for the latter unless its parent looks like
    a broker (has a ``jobs/`` directory).
    """
    path = Path(path)
    if (path / "jobs").is_dir() or (path / "telemetry").is_dir():
        return telemetry_dir(path), path
    if (path.parent / "jobs").is_dir():
        return path, path.parent
    return path, None


class TelemetryCollector:
    """Incrementally tails every frame stream into a fleet view.

    Per-file byte offsets (and the merged per-process views they
    produced) persist to ``.collector-state.json`` inside the telemetry
    directory after every :meth:`poll`, so a restarted collector — a new
    ``cntcache status`` invocation, a resumed dashboard — continues
    exactly where the last one stopped and never re-counts a frame.
    Only complete lines are consumed (see :func:`read_frames`), so an
    offset can never land mid-record.
    """

    def __init__(
        self,
        directory: str | Path,
        broker_root: str | Path | None = None,
        state_path: str | Path | None = None,
        persist: bool = True,
    ) -> None:
        located_dir, located_root = locate(directory)
        self.directory = located_dir
        self.broker_root = (
            Path(broker_root) if broker_root is not None else located_root
        )
        self.persist = persist
        self.state_path = (
            Path(state_path)
            if state_path is not None
            else self.directory / STATE_NAME
        )
        self.offsets: dict[str, int] = {}
        self.views: dict[str, ProcessView] = {}
        self.frames = 0
        self.torn_lines = 0
        self.energy_by_scheme: dict[str, float] = {}
        #: Fingerprints whose energy is already counted (dedupe across
        #: at-least-once re-executions).
        self._energy_seen: set[str] = set()
        self._load_state()

    # -------------------------------------------------------------- #
    # persisted state
    # -------------------------------------------------------------- #
    def _load_state(self) -> None:
        try:
            payload = json.loads(self.state_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):  # lint: disable=R007
            return  # fresh collector: no prior state to resume
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != TELEMETRY_SCHEMA
        ):
            return
        offsets = payload.get("offsets")
        if isinstance(offsets, dict):
            self.offsets = {
                str(name): int(value) for name, value in offsets.items()
            }
        self.frames = int(payload.get("frames", 0))
        self.torn_lines = int(payload.get("torn_lines", 0))
        energy = payload.get("energy_by_scheme")
        if isinstance(energy, dict):
            self.energy_by_scheme = {
                str(name): float(value) for name, value in energy.items()
            }
        seen = payload.get("energy_seen")
        if isinstance(seen, list):
            self._energy_seen = {str(item) for item in seen}
        views = payload.get("procs")
        if isinstance(views, dict):
            self.views = {
                str(name): ProcessView.from_dict(view)
                for name, view in views.items()
                if isinstance(view, dict)
            }

    def _save_state(self) -> None:
        if not self.persist:
            return
        payload = {
            "schema": TELEMETRY_SCHEMA,
            "offsets": dict(self.offsets),
            "frames": self.frames,
            "torn_lines": self.torn_lines,
            "energy_by_scheme": dict(self.energy_by_scheme),
            "energy_seen": sorted(self._energy_seen),
            "procs": {
                name: view.to_dict() for name, view in self.views.items()
            },
        }
        tmp = self.state_path.with_name(
            f"{self.state_path.name}.{os.getpid()}.tmp"
        )
        try:
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, self.state_path)
        except OSError:  # lint: disable=R007
            pass  # observation-side persistence is best-effort

    # -------------------------------------------------------------- #
    # tailing
    # -------------------------------------------------------------- #
    def poll(self) -> list[dict[str, Any]]:
        """Tail every stream once; returns the newly-read frames."""
        fresh: list[dict[str, Any]] = []
        try:
            paths = sorted(self.directory.glob(f"*{SUFFIX}"))
        except OSError:
            return fresh
        for path in paths:
            key = path.name
            offset = self.offsets.get(key, 0)
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if size < offset:
                offset = 0  # truncated/rotated underneath us: restart
            frames, new_offset, skipped = read_frames(path, offset)
            self.offsets[key] = new_offset
            self.torn_lines += skipped
            for frame in frames:
                self._absorb(frame)
            fresh.extend(frames)
        if fresh:
            fresh.sort(key=lambda frame: float(frame.get("ts", 0.0)))
        self._save_state()
        return fresh

    def _absorb(self, frame: dict[str, Any]) -> None:
        self.frames += 1
        identity = str(frame.get("proc", "?"))
        view = self.views.get(identity)
        if view is None:
            view = ProcessView(
                identity=identity, role=str(frame.get("role", "worker"))
            )
            self.views[identity] = view
        view.absorb(frame)
        # Energy-per-scheme from finish events, exactly once per job
        # fingerprint (re-executions after a steal re-announce it).
        if (
            frame.get("type") == "lifecycle"
            and frame.get("event") == "finish"
        ):
            fingerprint = frame.get("fingerprint")
            scheme = frame.get("scheme")
            energy = frame.get("energy_fj")
            if (
                isinstance(fingerprint, str)
                and fingerprint not in self._energy_seen
                and scheme is not None
                and isinstance(energy, (int, float))
            ):
                self._energy_seen.add(fingerprint)
                key = str(scheme)
                self.energy_by_scheme[key] = (
                    self.energy_by_scheme.get(key, 0.0) + float(energy)
                )

    # -------------------------------------------------------------- #
    # snapshots
    # -------------------------------------------------------------- #
    def _count_files(self, name: str) -> int | None:
        if self.broker_root is None:
            return None
        directory = Path(self.broker_root) / name
        try:
            return sum(1 for _ in directory.glob("*.json"))
        except OSError:
            return 0

    def snapshot(self) -> FleetSnapshot:
        """The current merged fleet view (does not poll; pair with
        :meth:`poll` for a live reading)."""
        procs = [
            self.views[name]
            for name in sorted(
                self.views,
                key=lambda name: (self.views[name].role != "coordinator", name),
            )
        ]
        return FleetSnapshot(
            ts=_wall_now(),
            procs=procs,
            queue_depth=self._count_files("jobs"),
            active_leases=self._count_files("leases"),
            quarantined=self._count_files("quarantine"),
            frames=self.frames,
            torn_lines=self.torn_lines,
            energy_by_scheme=dict(self.energy_by_scheme),
        )


__all__ = [
    "DEFAULT_INTERVAL_S",
    "LIFECYCLE_EVENTS",
    "TELEMETRY_SCHEMA",
    "FleetSnapshot",
    "ProcessView",
    "TelemetryCollector",
    "TelemetryError",
    "TelemetryWriter",
    "default_identity",
    "locate",
    "make_trace_id",
    "prometheus_lines",
    "read_all_frames",
    "read_frames",
    "span_for",
    "telemetry_dir",
]

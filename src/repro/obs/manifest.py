"""Run manifests: one JSONL record per resolved job, plus a merger.

A manifest is an append-only JSON-lines file:

* line 1 — a ``header`` entry carrying the manifest schema tag;
* one ``job`` entry per *unique job resolution* (job hash, config digest,
  result source, wall time, queue wait, accesses, energy totals and the
  per-job probe counters/timers that travelled back in the result
  payload);
* one ``failure`` entry per job that exhausted its attempts (the
  :class:`repro.resilience.FailureRecord` fields);
* one ``summary`` entry per engine batch (engine counters, batch wall
  time, session-level probe totals).

:func:`read_manifest` parses and validates one file;
:func:`merge_manifests` concatenates several (a batch of runs) and
:func:`summarize` aggregates any entry stream into a
:class:`ManifestSummary` — the data behind ``cntcache profile``.  Every
rate in the summary is zero-guarded: an empty manifest summarizes to
zeros, never to a ``ZeroDivisionError``.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro import faults
from repro.obs import probe
from repro.schemas import MANIFEST

#: Manifest format tag; bump the version in :mod:`repro.schemas` when
#: entry fields change incompatibly.
MANIFEST_SCHEMA = MANIFEST.tag


class ManifestError(ValueError):
    """Raised on malformed manifest files or entries."""


def config_digest(config) -> str | None:
    """Short content hash of a config (``None`` for config-less jobs)."""
    if config is None:
        return None
    blob = json.dumps(config.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ------------------------------------------------------------------ #
# entry constructors
# ------------------------------------------------------------------ #
def header_entry() -> dict:
    """The mandatory first line of every manifest."""
    return {"type": "header", "schema": MANIFEST_SCHEMA}


def job_entry(
    job,
    result,
    queue_wait_s: float = 0.0,
    trace_id: str | None = None,
    span_id: str | None = None,
) -> dict:
    """One resolved job, JSON-ready.

    ``job`` is a :class:`repro.exec.SimJob`, ``result`` the matching
    :class:`repro.exec.ExecResult`; the per-job probe snapshot (if the
    job ran with probes on) rides along in ``result.obs``.  A broker
    coordinator additionally stamps the fleet ``trace_id`` and the
    job's derived ``span_id`` (see :mod:`repro.obs.telemetry`) so
    manifest entries correlate with worker telemetry and trace
    snapshots; both are omitted for untraced runs.
    """
    stats = result.stats
    obs = result.obs or {}
    entry = {
        "type": "job",
        "fingerprint": job.fingerprint,
        "label": job.label,
        "kind": job.kind,
        "workload": job.workload,
        "size": job.size,
        "seed": job.seed,
        "scheme": None if job.config is None else job.config.scheme,
        "config_digest": config_digest(job.config),
        "source": result.source,
        "wall_s": result.wall_s,
        "queue_wait_s": queue_wait_s,
        "accesses": result.accesses,
        "energy": None if stats is None else stats.to_dict(),
        "total_fj": None if stats is None else stats.total_fj,
        "counters": dict(obs.get("counters", {})),
        "timers": dict(obs.get("timers", {})),
        "events": list(obs.get("events", [])),
        "gauges": dict(obs.get("gauges", {})),
    }
    if trace_id is not None:
        entry["trace_id"] = trace_id
        entry["span_id"] = span_id
    return entry


def failure_entry(record) -> dict:
    """One exhausted job (a :class:`repro.resilience.FailureRecord`)."""
    return {"type": "failure", **record.to_dict()}


def broker_entry(event: str, **fields) -> dict:
    """One distributed-broker lifecycle event (``repro.exec.broker``).

    ``event`` is one of ``publish`` (job records posted), ``reclaim``
    (an expired lease stolen from a lost worker), ``quarantine`` (a
    poison job retired) or ``drain`` (the coordinator finished); the
    keyword fields carry the event's evidence (fingerprints, counts,
    generations).  Broker entries are observability only — readers that
    predate them (or :func:`summarize`) skip unknown types untouched.
    """
    return {"type": "broker", "event": event, **fields}


def summary_entry(engine: dict, wall_s: float, scope=None) -> dict:
    """One engine batch: counters plus the session scope's probe totals."""
    snapshot = scope.snapshot() if scope is not None else {}
    return {
        "type": "summary",
        "engine": dict(engine),
        "wall_s": wall_s,
        "counters": dict(snapshot.get("counters", {})),
        "timers": dict(snapshot.get("timers", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "dropped_events": snapshot.get("dropped_events", 0),
    }


# ------------------------------------------------------------------ #
# writer
# ------------------------------------------------------------------ #
class ManifestWriter:
    """Append JSONL entries to a manifest file (header written lazily)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.entries_written = 0
        self._file = None

    def write(self, entry: dict) -> None:
        """Append one typed entry (opens the file and emits the header first)."""
        if not isinstance(entry, dict) or "type" not in entry:
            raise ManifestError(f"manifest entries need a 'type': {entry!r}")
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("w", encoding="utf-8")
            self._emit(header_entry())
        poison = faults.poison_manifest_line(
            f"{self.path.name}:{self.entries_written}"
        )
        if poison is not None:
            assert self._file is not None
            self._file.write(poison + "\n")
        self._emit(entry)

    def _emit(self, entry: dict) -> None:
        assert self._file is not None
        self._file.write(json.dumps(entry, sort_keys=True) + "\n")
        self._file.flush()
        self.entries_written += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "ManifestWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ------------------------------------------------------------------ #
# reader / merger
# ------------------------------------------------------------------ #
def read_manifest(path: str | Path, on_error: str = "raise") -> list[dict]:
    """Parse one manifest; validates the header and every line.

    ``on_error`` selects the policy for malformed *complete* lines
    (poisoned entries): ``"raise"`` (the default) raises
    :class:`ManifestError` at the first bad line; ``"skip"`` drops bad
    lines and keeps the parseable rest — what ``cntcache profile`` uses,
    so one corrupt line cannot blank a whole run's telemetry.  A bad
    header is fatal under both policies.

    A *torn* final line — unterminated (no trailing newline) and
    unparseable, i.e. a live writer caught mid-append — is different
    from corruption: under **both** policies it is skipped and counted
    (``obs.torn_lines``), so tailing a manifest that is still being
    written never raises on the write in flight.  An unterminated final
    line that *does* parse is kept — the writer merely died between
    the payload and its newline.
    """
    if on_error not in ("raise", "skip"):
        raise ManifestError(f"on_error must be 'raise' or 'skip': {on_error!r}")
    path = Path(path)
    entries: list[dict] = []
    with path.open("r", encoding="utf-8") as stream:
        text = stream.read()
    lines = text.split("\n")
    torn_tail = None
    if lines and lines[-1] != "":
        torn_tail = lines[-1]  # final line lacks its newline: maybe torn
    lines = lines[:-1]
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError as error:
            if on_error == "skip":
                continue
            raise ManifestError(
                f"{path}:{lineno}: not JSON: {error}"
            ) from None
        if not isinstance(entry, dict) or "type" not in entry:
            if on_error == "skip":
                continue
            raise ManifestError(f"{path}:{lineno}: entry without 'type'")
        entries.append(entry)
    if torn_tail is not None and torn_tail.strip():
        try:
            entry = json.loads(torn_tail)
        except ValueError:
            entry = None
        if isinstance(entry, dict) and "type" in entry:
            entries.append(entry)
        else:
            probe.counter("obs.torn_lines")
    if not entries:
        raise ManifestError(f"{path}: empty manifest")
    head = entries[0]
    if head["type"] != "header" or head.get("schema") != MANIFEST_SCHEMA:
        raise ManifestError(
            f"{path}: bad header {head!r}; expected schema {MANIFEST_SCHEMA!r}"
        )
    return entries


def merge_manifests(
    paths: Iterable[str | Path], on_error: str = "raise"
) -> list[dict]:
    """Concatenate several manifests (a batch) into one entry stream."""
    merged: list[dict] = []
    for path in paths:
        merged.extend(read_manifest(path, on_error=on_error))
    return merged


# ------------------------------------------------------------------ #
# aggregation
# ------------------------------------------------------------------ #
@dataclass
class ManifestSummary:
    """Aggregated view of one or more manifests (all rates zero-guarded)."""

    jobs: int = 0
    accesses: int = 0
    wall_s: float = 0.0
    queue_wait_s: float = 0.0
    total_fj: float = 0.0
    #: kind -> {"jobs", "wall_s", "accesses"}
    by_kind: dict = field(default_factory=dict)
    #: result source ("run"/"cache"/"memo") -> job count
    by_source: dict = field(default_factory=dict)
    #: scheme -> {"jobs", "total_fj", "accesses", "fj_per_access"}
    by_scheme: dict = field(default_factory=dict)
    #: energy component -> fJ total (over jobs that carried EnergyStats)
    energy_fj: dict = field(default_factory=dict)
    #: merged engine counters from summary entries (zeros when absent)
    engine: dict = field(default_factory=dict)
    #: aggregated probe counters (job + summary entries)
    counters: dict = field(default_factory=dict)
    #: aggregated probe timers, seconds
    timers: dict = field(default_factory=dict)
    #: merged point-in-time gauges (last write wins, summary preferred)
    gauges: dict = field(default_factory=dict)
    #: top-N slowest job entries (trimmed)
    slowest: list = field(default_factory=list)
    #: jobs that exhausted their attempts (``failure`` entries)
    failures: int = 0
    #: trimmed failure records (label, error, attempts, transient)
    failed: list = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of resolutions served without simulating (0 if none)."""
        engine = self.engine
        resolved = (
            engine.get("memo_hits", 0)
            + engine.get("cache_hits", 0)
            + engine.get("executed", 0)
        )
        if resolved:
            hits = engine.get("memo_hits", 0) + engine.get("cache_hits", 0)
            return hits / resolved
        total = sum(self.by_source.values())
        if not total:
            return 0.0
        return (total - self.by_source.get("run", 0)) / total

    @property
    def accesses_per_s(self) -> float:
        """Aggregate simulation throughput (0 when no wall time recorded)."""
        if self.wall_s <= 0:
            return 0.0
        return self.accesses / self.wall_s

    def to_dict(self) -> dict:
        """JSON-ready dump (the ``--json`` trending payload)."""
        return {
            "jobs": self.jobs,
            "accesses": self.accesses,
            "wall_s": self.wall_s,
            "queue_wait_s": self.queue_wait_s,
            "total_fj": self.total_fj,
            "cache_hit_rate": self.cache_hit_rate,
            "accesses_per_s": self.accesses_per_s,
            "by_kind": self.by_kind,
            "by_source": self.by_source,
            "by_scheme": self.by_scheme,
            "energy_fj": self.energy_fj,
            "engine": self.engine,
            "counters": self.counters,
            "timers": self.timers,
            "gauges": self.gauges,
            "slowest": self.slowest,
            "failures": self.failures,
            "failed": self.failed,
        }


def _merge_numeric(into: dict, values: dict) -> None:
    for name, value in values.items():
        into[name] = into.get(name, 0) + value


def _finite(value, default: float = 0.0) -> float:
    """``value`` as a finite float; NaN/inf/garbage clamp to ``default``.

    Manifest entries can come off disk (merged batches, foreign
    writers), so a poisoned ``wall_s`` or ``total_fj`` must degrade to
    zero instead of propagating NaN through every per-kind rate.
    """
    try:
        value = float(value)
    except (TypeError, ValueError):
        return default
    return value if math.isfinite(value) else default


def summarize(entries: Iterable[dict], top: int = 10) -> ManifestSummary:
    """Aggregate an entry stream (headers are skipped, order irrelevant).

    Counter/timer totals come from ``summary`` entries when present (the
    session scope already folds in every job's traffic, so re-adding the
    per-job copies would double-count); a manifest with job entries only
    falls back to summing those.
    """
    summary = ManifestSummary()
    job_entries: list[dict] = []
    job_counters: dict = {}
    job_timers: dict = {}
    saw_summary = False
    for entry in entries:
        kind = entry.get("type")
        if kind == "job":
            job_entries.append(entry)
        elif kind == "summary":
            saw_summary = True
            _merge_numeric(summary.engine, entry.get("engine", {}))
            _merge_numeric(summary.counters, entry.get("counters", {}))
            _merge_numeric(summary.timers, entry.get("timers", {}))
            summary.gauges.update(entry.get("gauges", {}))
        elif kind == "failure":
            summary.failures += 1
            if len(summary.failed) < max(top, 0):
                summary.failed.append(
                    {
                        "label": entry.get("label"),
                        "error": entry.get("error"),
                        "message": entry.get("message"),
                        "attempts": entry.get("attempts", 0),
                        "transient": entry.get("transient"),
                    }
                )

    job_gauges: dict = {}
    for entry in job_entries:
        wall_s = _finite(entry.get("wall_s", 0.0))
        accesses = int(_finite(entry.get("accesses", 0)))
        summary.jobs += 1
        summary.accesses += accesses
        summary.wall_s += wall_s
        summary.queue_wait_s += _finite(entry.get("queue_wait_s", 0.0))
        _merge_numeric(job_counters, entry.get("counters", {}))
        _merge_numeric(job_timers, entry.get("timers", {}))
        job_gauges.update(entry.get("gauges", {}))

        by_kind = summary.by_kind.setdefault(
            entry.get("kind", "?"), {"jobs": 0, "wall_s": 0.0, "accesses": 0}
        )
        by_kind["jobs"] += 1
        by_kind["wall_s"] += wall_s
        by_kind["accesses"] += accesses

        source = entry.get("source", "?")
        summary.by_source[source] = summary.by_source.get(source, 0) + 1

        energy = entry.get("energy")
        if energy:
            components = {
                name: _finite(value)
                for name, value in energy.items()
                if isinstance(value, (int, float)) and name.endswith("_fj")
            }
            _merge_numeric(summary.energy_fj, components)
            total = _finite(entry.get("total_fj") or 0.0)
            # Report-side aggregation of already-metered energy, not a
            # new energy source.
            summary.total_fj += total  # lint: disable=R001
            scheme = entry.get("scheme") or "?"
            by_scheme = summary.by_scheme.setdefault(
                scheme, {"jobs": 0, "total_fj": 0.0, "accesses": 0}
            )
            by_scheme["jobs"] += 1
            by_scheme["total_fj"] += total
            by_scheme["accesses"] += int(_finite(entry.get("accesses", 0)))

    if not saw_summary:
        summary.counters = job_counters
        summary.timers = job_timers
        summary.gauges = job_gauges

    for by_kind in summary.by_kind.values():
        # A kind whose jobs all resolved instantly (memo/cache hits with
        # zero recorded wall time) must rate as 0, never NaN/inf.
        wall = by_kind["wall_s"]
        by_kind["accesses_per_s"] = (
            by_kind["accesses"] / wall if wall > 0 else 0.0
        )

    for by_scheme in summary.by_scheme.values():
        accesses = by_scheme["accesses"]
        by_scheme["fj_per_access"] = (
            by_scheme["total_fj"] / accesses if accesses else 0.0
        )

    ranked = sorted(
        job_entries,
        key=lambda entry: _finite(entry.get("wall_s", 0.0)),
        reverse=True,
    )
    summary.slowest = [
        {
            "label": entry.get("label"),
            "kind": entry.get("kind"),
            "source": entry.get("source"),
            "wall_s": _finite(entry.get("wall_s", 0.0)),
            "accesses": int(_finite(entry.get("accesses", 0))),
        }
        for entry in ranked[: max(top, 0)]
    ]
    return summary

"""``cntcache profile``: replay experiments with probes on, break it down.

:func:`profile_experiments` unions the job plans of the requested
experiments (all of them by default), resolves the deduplicated set
through an :class:`~repro.exec.ExecEngine` with an :class:`Obs` session
attached, and aggregates the resulting run manifest into a
:class:`ProfileReport` — wall time per job kind, exec-cache hit rate,
energy per scheme and component, aggregate probe counters/timers and the
top-N slowest jobs.  ``ProfileReport.render()`` is the human table;
``ProfileReport.to_dict()`` is the ``--json`` payload CI trends on.

This profiles the *measurement pipeline* (jobs, caches, phases); for
per-line spatial profiles of a single simulation see
:class:`repro.analysis.profile.LineProfiler`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.obs.manifest import MANIFEST_SCHEMA, ManifestSummary
from repro.obs.session import Obs
from repro.schemas import PROFILE

#: Report format tag for the ``--json`` output; bump the version in
#: :mod:`repro.schemas` when report fields change incompatibly.
PROFILE_SCHEMA = PROFILE.tag


class ProfileError(ValueError):
    """Raised on invalid profiling requests (unknown experiment ids...)."""


@dataclass
class ProfileReport:
    """The rendered outcome of one profiling run."""

    experiments: list[str]
    size: str
    seed: int
    jobs: int
    wall_s: float
    summary: ManifestSummary
    engine: dict = field(default_factory=dict)
    manifest_path: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready payload (``cntcache profile --json``)."""
        return {
            "schema": PROFILE_SCHEMA,
            "experiments": list(self.experiments),
            "size": self.size,
            "seed": self.seed,
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "engine": dict(self.engine),
            "manifest": self.manifest_path,
            "summary": self.summary.to_dict(),
        }

    def render(self) -> str:
        """Aligned text breakdown tables."""
        from repro.harness.tables import render_table

        summary = self.summary
        sections = [
            f"[profile] {len(self.experiments)} experiment(s), "
            f"size={self.size}, seed={self.seed}, jobs={self.jobs}, "
            f"{self.wall_s:.2f}s wall",
        ]

        total_wall = sum(
            row["wall_s"] for row in summary.by_kind.values()
        )
        rows = [
            [
                kind,
                row["jobs"],
                row["wall_s"],
                100.0 * row["wall_s"] / total_wall if total_wall else 0.0,
                row["accesses"],
            ]
            for kind, row in sorted(
                summary.by_kind.items(),
                key=lambda item: item[1]["wall_s"],
                reverse=True,
            )
        ]
        sections.append(
            render_table(
                ["job kind", "jobs", "wall s", "share %", "accesses"],
                rows,
                title="time per job kind",
            )
        )

        engine = self.engine
        executed = engine.get("executed", 0)
        sections.append(
            render_table(
                ["requested", "unique", "memo", "cache", "simulated",
                 "hit rate %", "avg queue s"],
                [[
                    engine.get("requested", 0),
                    engine.get("unique", 0),
                    engine.get("memo_hits", 0),
                    engine.get("cache_hits", 0),
                    executed,
                    100.0 * engine.get("cache_hit_rate", 0.0),
                    summary.queue_wait_s / executed if executed else 0.0,
                ]],
                title="exec engine",
            )
        )

        if summary.by_scheme:
            rows = [
                [
                    scheme,
                    row["jobs"],
                    row["total_fj"] / 1e6,
                    row["fj_per_access"],
                ]
                for scheme, row in sorted(summary.by_scheme.items())
            ]
            sections.append(
                render_table(
                    ["scheme", "jobs", "total nJ", "fJ/access"],
                    rows,
                    title="energy per scheme",
                )
            )

        if summary.energy_fj:
            total = sum(summary.energy_fj.values())
            rows = [
                [name, value / 1e6, 100.0 * value / total if total else 0.0]
                for name, value in sorted(
                    summary.energy_fj.items(),
                    key=lambda item: item[1],
                    reverse=True,
                )
            ]
            sections.append(
                render_table(
                    ["energy component", "nJ", "share %"],
                    rows,
                    title="energy per component",
                )
            )

        if summary.timers:
            rows = [
                [name, seconds]
                for name, seconds in sorted(
                    summary.timers.items(),
                    key=lambda item: item[1],
                    reverse=True,
                )
                # Aggregate queue wait is reported per job in the engine
                # table; as a raw sum it would drown the real phases.
                if name != "exec.queue_wait"
            ]
            sections.append(
                render_table(
                    ["timer", "seconds"],
                    rows,
                    floatfmt=".3f",
                    title="phase timers",
                )
            )

        if summary.slowest:
            rows = [
                [
                    row.get("label") or "-",
                    row.get("kind") or "-",
                    row.get("source") or "-",
                    row.get("wall_s", 0.0),
                    row.get("accesses", 0),
                ]
                for row in summary.slowest
            ]
            sections.append(
                render_table(
                    ["job", "kind", "source", "wall s", "accesses"],
                    rows,
                    floatfmt=".3f",
                    title=f"top {len(rows)} slowest jobs",
                )
            )

        if summary.counters:
            rows = [
                [name, value] for name, value in sorted(summary.counters.items())
            ]
            sections.append(
                render_table(["counter", "value"], rows, title="counters")
            )

        if summary.failures:
            rows = [
                [
                    row.get("label") or "-",
                    row.get("error") or "-",
                    row.get("attempts", 0),
                    "transient" if row.get("transient") else "permanent",
                ]
                for row in summary.failed
            ]
            sections.append(
                render_table(
                    ["failed job", "error", "attempts", "nature"],
                    rows,
                    title=f"failures ({summary.failures} total)",
                )
            )

        return "\n\n".join(sections)


def profile_experiments(
    experiments: Iterable[str] | None = None,
    *,
    size: str = "small",
    seed: int = 7,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    manifest: str | Path | None = None,
    top: int = 10,
    progress: Callable[[str], None] | None = None,
    resilience=None,
    backend: str | None = None,
) -> ProfileReport:
    """Profile the deduplicated job set of the requested experiments.

    ``experiments=None`` profiles every registered experiment.  The
    manifest (when a path is given) is written as the run progresses;
    the returned report aggregates the same entries in memory either way.
    ``backend`` overrides the simulation backend of every profiled job
    (``None`` = each job's own selection, i.e. the scalar default).
    """
    from repro.exec import ExecEngine
    from repro.harness.experiments import EXPERIMENT_PLANS, EXPERIMENTS

    ids = sorted(EXPERIMENTS) if experiments is None else list(experiments)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise ProfileError(
            f"unknown experiment(s) {unknown}; known: {sorted(EXPERIMENTS)}"
        )

    union = []
    for experiment_id in ids:
        plan = EXPERIMENT_PLANS.get(experiment_id)
        if plan is not None:
            union.extend(plan(size, seed).values())

    obs = Obs(manifest=manifest)
    engine = ExecEngine(
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        obs=obs,
        resilience=resilience,
        backend=backend,
    )
    started = time.perf_counter()
    engine.run_jobs(union)
    wall_s = time.perf_counter() - started
    obs.record_summary(engine.counters.to_dict(), wall_s)
    obs.close()

    return ProfileReport(
        experiments=ids,
        size=size,
        seed=seed,
        jobs=jobs,
        wall_s=wall_s,
        summary=obs.summary(top=top),
        engine=engine.counters.to_dict(),
        manifest_path=None if manifest is None else str(manifest),
    )


__all__ = [
    "MANIFEST_SCHEMA",
    "PROFILE_SCHEMA",
    "ProfileError",
    "ProfileReport",
    "profile_experiments",
]

"""Process-global probe switchboard: counters, timers, events and gauges.

Instrumented code (the cache demand path, the codecs, the exec engine,
the workload generators) calls
:func:`counter`/:func:`timer`/:func:`event`/:func:`gauge`
unconditionally; whether anything happens is decided by one module-global
flag, :data:`ENABLED`.  The contract is *zero cost when disabled*: with no
scope recording, every probe is one attribute load and a falsy branch —
no allocation, no dict access, no time syscall — so shipping probes in
the hot path does not tax unprofiled runs (asserted to < 5% on the exec
benches).

Recording model
---------------
A *scope* (:class:`ObsScope`) is a plain accumulator of counters, timers
and events.  Scopes are pushed on a process-global stack; every probe
records into **all** active scopes, so a per-job capture nested inside a
session-wide :class:`~repro.obs.session.Obs` feeds both.

* :func:`recording` — push a caller-owned scope for a ``with`` block
  (how :class:`~repro.exec.engine.ExecEngine` attaches its ``obs``).
* :func:`capture` — push a fresh anonymous scope *iff probes are already
  enabled*; the exec worker wraps each job in one so per-job counters can
  travel back through the result payload (:attr:`ExecResult.obs`).
* :func:`paused` — temporarily disable probes (used around memoized
  infrastructure work, e.g. L1 stream filtering, whose probe traffic
  would otherwise depend on worker-process topology).
* :func:`enable_in_worker` — ``ProcessPoolExecutor`` initializer that
  force-enables probes in a worker process, where no parent scope exists.

Determinism note: counters in the ``cache.*`` and ``codec.*`` namespaces
are per-job deterministic (identical under ``--jobs N`` and serial runs);
``workload.*`` and ``exec.*`` counters depend on process topology because
workload builds are memoized per process.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

#: Master switch: probes record iff True.  Hot call sites may read this
#: directly (``if probe.ENABLED:``) to skip even the function call.
ENABLED = False

#: Active scopes; every probe records into all of them.
_SCOPES: list["ObsScope"] = []

#: True in worker processes force-enabled by :func:`enable_in_worker`.
_FORCED = False

#: Per-scope event cap; beyond it events are counted, not stored.
MAX_EVENTS = 256


class ObsScope:
    """A plain accumulator of probe traffic.

    ``counters``
        name -> integer total.
    ``timers``
        name -> accumulated seconds.
    ``events``
        bounded list of ``{"name": ..., **fields}`` dicts (first
        :data:`MAX_EVENTS`; the overflow is counted in ``dropped_events``).
    ``gauges``
        name -> last observed point-in-time value (ring-buffer
        occupancy, queue depths...); last write wins, also on absorb.
    """

    __slots__ = ("counters", "timers", "events", "gauges", "dropped_events")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}
        self.events: list[dict] = []
        self.gauges: dict[str, float] = {}
        self.dropped_events = 0

    # -------------------------------------------------------------- #
    # recording
    # -------------------------------------------------------------- #
    def add_count(self, name: str, n: int = 1) -> None:
        """Bump counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` onto timer ``name``."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def add_event(self, name: str, fields: dict) -> None:
        """Store one event (beyond :data:`MAX_EVENTS`, just count it)."""
        if len(self.events) >= MAX_EVENTS:
            self.dropped_events += 1
            return
        self.events.append({"name": name, **fields})

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to a point-in-time ``value`` (last wins)."""
        self.gauges[name] = value

    # -------------------------------------------------------------- #
    # transport
    # -------------------------------------------------------------- #
    def snapshot(self) -> dict:
        """JSON-ready copy (the ``ExecResult.obs`` payload slot)."""
        return {
            "counters": dict(self.counters),
            "timers": dict(self.timers),
            "events": [dict(event) for event in self.events],
            "gauges": dict(self.gauges),
            "dropped_events": self.dropped_events,
        }

    def absorb(self, snapshot: dict) -> None:
        """Merge a :meth:`snapshot` (e.g. from a worker process) into this scope."""
        for name, value in snapshot.get("counters", {}).items():
            self.add_count(name, int(value))
        for name, value in snapshot.get("timers", {}).items():
            self.add_time(name, float(value))
        for event_fields in snapshot.get("events", []):
            fields = dict(event_fields)
            name = fields.pop("name", "event")
            self.add_event(name, fields)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, float(value))
        self.dropped_events += int(snapshot.get("dropped_events", 0))


def _sync() -> None:
    global ENABLED
    ENABLED = _FORCED or bool(_SCOPES)


# ------------------------------------------------------------------ #
# probes (the instrumented code's API)
# ------------------------------------------------------------------ #
def counter(name: str, n: int = 1) -> None:
    """Bump a counter in every active scope (no-op when disabled)."""
    if not ENABLED:
        return
    for scope in _SCOPES:
        scope.add_count(name, n)


def timing(name: str, seconds: float) -> None:
    """Record an already-measured duration (no-op when disabled)."""
    if not ENABLED:
        return
    for scope in _SCOPES:
        scope.add_time(name, seconds)


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Time a ``with`` block into every active scope (no-op when disabled)."""
    if not ENABLED:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        timing(name, time.perf_counter() - started)


def event(name: str, **fields: Any) -> None:
    """Record a structured event in every active scope (no-op when disabled)."""
    if not ENABLED:
        return
    for scope in _SCOPES:
        scope.add_event(name, fields)


def gauge(name: str, value: float) -> None:
    """Set a point-in-time gauge in every active scope (no-op when disabled).

    Unlike :func:`counter`, a gauge does not accumulate: the last write
    wins, both within a scope and when worker snapshots are absorbed.
    """
    if not ENABLED:
        return
    for scope in _SCOPES:
        scope.set_gauge(name, float(value))


# ------------------------------------------------------------------ #
# scope management
# ------------------------------------------------------------------ #
@contextmanager
def recording(scope: ObsScope | None) -> Iterator[ObsScope | None]:
    """Record probe traffic into ``scope`` for the block (None = no-op)."""
    global ENABLED
    if scope is None or any(active is scope for active in _SCOPES):
        yield scope
        return
    _SCOPES.append(scope)
    ENABLED = True
    try:
        yield scope
    finally:
        _SCOPES.remove(scope)
        _sync()


@contextmanager
def capture() -> Iterator[ObsScope | None]:
    """A fresh nested scope, iff probes are enabled (else yields ``None``)."""
    global ENABLED
    if not ENABLED:
        yield None
        return
    scope = ObsScope()
    _SCOPES.append(scope)
    try:
        yield scope
    finally:
        _SCOPES.remove(scope)
        _sync()


@contextmanager
def paused() -> Iterator[None]:
    """Temporarily disable probes (infrastructure work, not measurement)."""
    global ENABLED
    if not ENABLED:
        yield
        return
    ENABLED = False
    try:
        yield
    finally:
        _sync()


def enable_in_worker() -> None:
    """``ProcessPoolExecutor`` initializer: force probes on in this process.

    Workers have no parent scope; per-job :func:`capture` scopes collect
    the traffic and ship it home through the result payload.
    """
    global _FORCED, ENABLED
    _FORCED = True
    ENABLED = True


def absorb(snapshot: dict) -> None:
    """Merge a worker-produced snapshot into every active scope."""
    if not ENABLED or not snapshot:
        return
    for scope in _SCOPES:
        scope.absorb(snapshot)

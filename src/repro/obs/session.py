"""The :class:`Obs` session: a live probe scope plus an optional manifest.

An ``Obs`` is what callers hand to the engine and the harness helpers via
the uniform ``obs=`` keyword (see :mod:`repro.harness.runner` for the
convention).  It is an :class:`~repro.obs.probe.ObsScope`, so while it is
recording (the engine pushes it around every batch) all probe traffic
accumulates on it; in addition it collects the JSONL manifest entries the
engine reports (one per unique job resolution, one summary per batch) —
in memory always, and mirrored to a manifest file when one is attached.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.manifest import (
    ManifestSummary,
    ManifestWriter,
    broker_entry,
    failure_entry,
    job_entry,
    summarize,
    summary_entry,
)
from repro.obs.probe import ObsScope


class Obs(ObsScope):
    """One observation session.

    ``manifest``
        ``None`` (in-memory only), a path (a :class:`ManifestWriter` is
        opened on it), or an existing writer.
    """

    __slots__ = ("entries", "manifest")

    def __init__(
        self, manifest: str | Path | ManifestWriter | None = None
    ) -> None:
        super().__init__()
        #: Every manifest entry reported to this session, in order.
        self.entries: list[dict] = []
        if manifest is None or isinstance(manifest, ManifestWriter):
            self.manifest = manifest
        else:
            self.manifest = ManifestWriter(manifest)

    # -------------------------------------------------------------- #
    # reporting (called by the engine)
    # -------------------------------------------------------------- #
    def record_job(
        self,
        job,
        result,
        queue_wait_s: float = 0.0,
        trace_id: str | None = None,
        span_id: str | None = None,
    ) -> dict:
        """Append one resolved-job entry; returns it.

        ``trace_id``/``span_id`` are the fleet correlation ids a broker
        coordinator stamps (see :mod:`repro.obs.telemetry`); omitted
        from the entry when ``None``.
        """
        entry = job_entry(
            job,
            result,
            queue_wait_s=queue_wait_s,
            trace_id=trace_id,
            span_id=span_id,
        )
        self._append(entry)
        return entry

    def record_failure(self, record) -> dict:
        """Append one exhausted-job entry (a ``FailureRecord``); returns it."""
        entry = failure_entry(record)
        self._append(entry)
        return entry

    def record_broker(self, event: str, **fields) -> dict:
        """Append one broker lifecycle entry (publish/reclaim/quarantine/drain)."""
        entry = broker_entry(event, **fields)
        self._append(entry)
        return entry

    def record_summary(self, engine_counters: dict, wall_s: float) -> dict:
        """Append one batch-summary entry (engine counters + scope totals)."""
        entry = summary_entry(engine_counters, wall_s, scope=self)
        self._append(entry)
        return entry

    def _append(self, entry: dict) -> None:
        self.entries.append(entry)
        if self.manifest is not None:
            self.manifest.write(entry)

    # -------------------------------------------------------------- #
    # consumption
    # -------------------------------------------------------------- #
    def summary(self, top: int = 10) -> ManifestSummary:
        """Aggregate everything this session saw (zero-guarded).

        A session that never recorded a batch summary is summarized as if
        one had been taken now, so live probe totals are never lost.
        """
        entries = list(self.entries)
        if not any(entry.get("type") == "summary" for entry in entries):
            entries.append(summary_entry({}, 0.0, scope=self))
        return summarize(entries, top=top)

    def close(self) -> None:
        """Close the attached manifest writer (if any)."""
        if self.manifest is not None:
            self.manifest.close()

    def __enter__(self) -> "Obs":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Trace exporters: Chrome trace-event JSON and collapsed-stack energy.

Both exporters consume per-job trace snapshots (the dicts
:mod:`repro.obs.trace` ships on :attr:`ExecResult.trace`):

* :func:`chrome_trace` — the Chrome trace-event JSON object format
  (``{"traceEvents": [...]}``), loadable in ``about:tracing`` /
  Perfetto.  Each job becomes one named thread; sampled demand accesses
  are complete (``"ph": "X"``) events on an access-index timeline (one
  microsecond-unit tick per access, ``dur`` = the sampling stride, so
  adjacent samples tile the axis), spans keep their wall-clock
  microseconds, and the ``finalize`` residual is an instant event.
* :func:`collapsed_stacks` — the Brendan-Gregg collapsed-stack format,
  one ``frame;frame;... value`` line per stack, with **femtojoules**
  (scaled to integer attojoules) as the value instead of time:
  ``workload;cache-level;scheme;component aJ``.  Feed it to any
  flamegraph renderer to see where the energy went.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable


def _access_name(event: dict) -> str:
    op = "write" if event.get("write") else "read"
    outcome = "hit" if event.get("hit") else "miss"
    return f"{op} {outcome}"


def chrome_trace(traces: Iterable[dict]) -> dict:
    """Build a Chrome trace-event JSON object from per-job snapshots."""
    trace_events: list[dict] = []
    for tid, trace in enumerate(traces, start=1):
        if not trace:
            continue
        label = str(trace.get("label") or f"trace-{tid}")
        trace_events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": label},
            }
        )
        for event in trace.get("events", []):
            kind = event.get("kind")
            args = {
                name: value
                for name, value in event.items()
                if name not in ("kind", "ts_us", "dur_us")
            }
            if kind == "access":
                stride = max(int(event.get("every", 1)), 1)
                trace_events.append(
                    {
                        "ph": "X",
                        "pid": 1,
                        "tid": tid,
                        "cat": "access",
                        "name": _access_name(event),
                        "ts": float(event.get("index", 0)),
                        "dur": float(stride),
                        "args": args,
                    }
                )
            elif kind == "span":
                trace_events.append(
                    {
                        "ph": "X",
                        "pid": 1,
                        "tid": tid,
                        "cat": "span",
                        "name": str(event.get("name", "span")),
                        "ts": float(event.get("ts_us", 0.0)),
                        "dur": float(event.get("dur_us", 0.0)),
                        "args": args,
                    }
                )
            else:  # finalize and any future instant kinds
                trace_events.append(
                    {
                        "ph": "i",
                        "pid": 1,
                        "tid": tid,
                        "cat": "trace",
                        "name": str(kind),
                        "ts": float(event.get("index", 0)),
                        "s": "t",
                        "args": args,
                    }
                )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def collapsed_stacks(traces: Iterable[dict]) -> list[str]:
    """Collapsed-stack lines attributing attojoules to component stacks.

    The stack is ``workload;cache-level;scheme;component`` and the value
    is the integer attojoule total (fJ x 1000, rounded) so standard
    flamegraph tooling — which expects integer sample counts — renders
    an energy profile directly.
    """
    totals: dict[str, float] = {}
    for trace in traces:
        if not trace:
            continue
        workload = str(trace.get("workload") or "unknown")
        level = "l2" if trace.get("job_kind") == "l2" else "l1"
        scheme = str(trace.get("scheme") or "none")
        for event in trace.get("events", []):
            if event.get("kind") not in ("access", "finalize"):
                continue
            for component, fj in event.get("energy", {}).items():
                stack = f"{workload};{level};{scheme};{component}"
                totals[stack] = totals.get(stack, 0.0) + float(fj)
    return [
        f"{stack} {round(fj * 1000.0)}"
        for stack, fj in sorted(totals.items())
        if round(fj * 1000.0) > 0
    ]


def fleet_chrome_trace(frames: Iterable[dict]) -> dict:
    """One Chrome timeline for the whole fleet, from telemetry frames.

    Consumes the NDJSON frames :mod:`repro.obs.telemetry` streams (see
    :func:`repro.obs.telemetry.read_all_frames`) and renders every
    process identity as its own Chrome *process* row — the coordinator
    first, then each worker.  ``claim`` → ``finish``/``fail`` lifecycle
    pairs become complete (``"ph": "X"``) job spans on the shared
    wall-clock timeline (correlation ids in ``args``), unpaired
    lifecycle events become instants, and coordinator queue-depth
    heartbeats become counter (``"ph": "C"``) samples, so the drain's
    shape — steals, stragglers, idle tails — is visible at a glance in
    Perfetto.
    """
    ordered = sorted(
        (frame for frame in frames if frame),
        key=lambda frame: float(frame.get("ts", 0.0)),
    )
    procs: list[str] = []
    roles: dict[str, str] = {}
    for frame in ordered:
        identity = str(frame.get("proc", "?"))
        if identity not in roles:
            roles[identity] = str(frame.get("role", "worker"))
            procs.append(identity)
    procs.sort(key=lambda identity: (roles[identity] != "coordinator", identity))
    pids = {identity: pid for pid, identity in enumerate(procs, start=1)}
    base_ts = float(ordered[0].get("ts", 0.0)) if ordered else 0.0
    last_ts = float(ordered[-1].get("ts", 0.0)) if ordered else 0.0

    def us(ts: float) -> float:
        return (ts - base_ts) * 1e6

    trace_events: list[dict] = []
    for identity in procs:
        trace_events.append(
            {
                "ph": "M",
                "pid": pids[identity],
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"{roles[identity]} {identity}"},
            }
        )
    #: (identity, fingerprint) -> the opening claim frame.
    open_claims: dict[tuple[str, str], dict] = {}
    for frame in ordered:
        identity = str(frame.get("proc", "?"))
        pid = pids[identity]
        ts = float(frame.get("ts", 0.0))
        kind = frame.get("type")
        if kind == "heartbeat":
            gauges = frame.get("gauges") or {}
            depth = gauges.get("queue_depth")
            if isinstance(depth, (int, float)):
                trace_events.append(
                    {
                        "ph": "C",
                        "pid": pid,
                        "tid": 0,
                        "name": "queue_depth",
                        "ts": us(ts),
                        "args": {"pending": float(depth)},
                    }
                )
            continue
        if kind != "lifecycle":
            continue
        event = str(frame.get("event", "?"))
        fingerprint = str(frame.get("fingerprint") or "")
        args = {
            name: value
            for name, value in frame.items()
            if name not in ("schema", "type", "ts", "proc", "role", "event")
        }
        if event == "claim" and fingerprint:
            open_claims[(identity, fingerprint)] = frame
            continue
        if event in ("finish", "fail", "quarantine") and fingerprint:
            opened = open_claims.pop((identity, fingerprint), None)
            if opened is not None:
                start = float(opened.get("ts", ts))
                trace_events.append(
                    {
                        "ph": "X",
                        "pid": pid,
                        "tid": 1,
                        "cat": "job",
                        "name": str(
                            frame.get("label")
                            or opened.get("label")
                            or fingerprint[:12]
                        ),
                        "ts": us(start),
                        "dur": max(us(ts) - us(start), 1.0),
                        "args": args,
                    }
                )
                continue
        trace_events.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": 0,
                "cat": "lifecycle",
                "name": event,
                "ts": us(ts),
                "s": "p",
                "args": args,
            }
        )
    # A claim whose job was still running when the stream ended is drawn
    # to the last observed instant, not dropped.
    for (identity, fingerprint), opened in open_claims.items():
        start = float(opened.get("ts", last_ts))
        trace_events.append(
            {
                "ph": "X",
                "pid": pids[identity],
                "tid": 1,
                "cat": "job",
                "name": str(opened.get("label") or fingerprint[:12]),
                "ts": us(start),
                "dur": max(us(last_ts) - us(start), 1.0),
                "args": {"unfinished": True, "fingerprint": fingerprint},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome(traces: Iterable[dict], path: str | Path) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(traces), sort_keys=True), encoding="utf-8"
    )
    return path


def write_collapsed(traces: Iterable[dict], path: str | Path) -> Path:
    """Write :func:`collapsed_stacks` lines; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = collapsed_stacks(traces)
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return path


def write_fleet_chrome(frames: Iterable[dict], path: str | Path) -> Path:
    """Write :func:`fleet_chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(fleet_chrome_trace(frames), sort_keys=True),
        encoding="utf-8",
    )
    return path


__all__ = [
    "chrome_trace",
    "collapsed_stacks",
    "fleet_chrome_trace",
    "write_chrome",
    "write_collapsed",
    "write_fleet_chrome",
]

"""Trace exporters: Chrome trace-event JSON and collapsed-stack energy.

Both exporters consume per-job trace snapshots (the dicts
:mod:`repro.obs.trace` ships on :attr:`ExecResult.trace`):

* :func:`chrome_trace` — the Chrome trace-event JSON object format
  (``{"traceEvents": [...]}``), loadable in ``about:tracing`` /
  Perfetto.  Each job becomes one named thread; sampled demand accesses
  are complete (``"ph": "X"``) events on an access-index timeline (one
  microsecond-unit tick per access, ``dur`` = the sampling stride, so
  adjacent samples tile the axis), spans keep their wall-clock
  microseconds, and the ``finalize`` residual is an instant event.
* :func:`collapsed_stacks` — the Brendan-Gregg collapsed-stack format,
  one ``frame;frame;... value`` line per stack, with **femtojoules**
  (scaled to integer attojoules) as the value instead of time:
  ``workload;cache-level;scheme;component aJ``.  Feed it to any
  flamegraph renderer to see where the energy went.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable


def _access_name(event: dict) -> str:
    op = "write" if event.get("write") else "read"
    outcome = "hit" if event.get("hit") else "miss"
    return f"{op} {outcome}"


def chrome_trace(traces: Iterable[dict]) -> dict:
    """Build a Chrome trace-event JSON object from per-job snapshots."""
    trace_events: list[dict] = []
    for tid, trace in enumerate(traces, start=1):
        if not trace:
            continue
        label = str(trace.get("label") or f"trace-{tid}")
        trace_events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": label},
            }
        )
        for event in trace.get("events", []):
            kind = event.get("kind")
            args = {
                name: value
                for name, value in event.items()
                if name not in ("kind", "ts_us", "dur_us")
            }
            if kind == "access":
                stride = max(int(event.get("every", 1)), 1)
                trace_events.append(
                    {
                        "ph": "X",
                        "pid": 1,
                        "tid": tid,
                        "cat": "access",
                        "name": _access_name(event),
                        "ts": float(event.get("index", 0)),
                        "dur": float(stride),
                        "args": args,
                    }
                )
            elif kind == "span":
                trace_events.append(
                    {
                        "ph": "X",
                        "pid": 1,
                        "tid": tid,
                        "cat": "span",
                        "name": str(event.get("name", "span")),
                        "ts": float(event.get("ts_us", 0.0)),
                        "dur": float(event.get("dur_us", 0.0)),
                        "args": args,
                    }
                )
            else:  # finalize and any future instant kinds
                trace_events.append(
                    {
                        "ph": "i",
                        "pid": 1,
                        "tid": tid,
                        "cat": "trace",
                        "name": str(kind),
                        "ts": float(event.get("index", 0)),
                        "s": "t",
                        "args": args,
                    }
                )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def collapsed_stacks(traces: Iterable[dict]) -> list[str]:
    """Collapsed-stack lines attributing attojoules to component stacks.

    The stack is ``workload;cache-level;scheme;component`` and the value
    is the integer attojoule total (fJ x 1000, rounded) so standard
    flamegraph tooling — which expects integer sample counts — renders
    an energy profile directly.
    """
    totals: dict[str, float] = {}
    for trace in traces:
        if not trace:
            continue
        workload = str(trace.get("workload") or "unknown")
        level = "l2" if trace.get("job_kind") == "l2" else "l1"
        scheme = str(trace.get("scheme") or "none")
        for event in trace.get("events", []):
            if event.get("kind") not in ("access", "finalize"):
                continue
            for component, fj in event.get("energy", {}).items():
                stack = f"{workload};{level};{scheme};{component}"
                totals[stack] = totals.get(stack, 0.0) + float(fj)
    return [
        f"{stack} {round(fj * 1000.0)}"
        for stack, fj in sorted(totals.items())
        if round(fj * 1000.0) > 0
    ]


def write_chrome(traces: Iterable[dict], path: str | Path) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(traces), sort_keys=True), encoding="utf-8"
    )
    return path


def write_collapsed(traces: Iterable[dict], path: str | Path) -> Path:
    """Write :func:`collapsed_stacks` lines; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = collapsed_stacks(traces)
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return path


__all__ = ["chrome_trace", "collapsed_stacks", "write_chrome", "write_collapsed"]

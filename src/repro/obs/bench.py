"""``cntcache bench``: a recorded benchmark trajectory + regression gate.

One ``bench`` run measures a declared suite of metrics — simulator
throughput, exec-engine serial/parallel/warm-cache throughput, and the
paper-fidelity numbers (average adaptive saving vs. the 22.2% target,
the Table I write asymmetry, the Eq. 3 read/write delta balance) — and
appends one schema-versioned ``BENCH_<n>.json`` record (git SHA, UTC
timestamp, machine fingerprint, metric map) to the trajectory directory.

:func:`compare` then judges a fresh record against the trajectory:
per-metric baselines are the **median of the last K** comparable records
(performance metrics only compare within the same machine fingerprint
and size/seed; fidelity metrics compare across machines but within the
same size/seed), and a regression is flagged when a higher-is-better
metric drops more than its tolerance below baseline (default 15% for
throughput) or when a fidelity metric drifts *at all* beyond numeric
noise (default relative tolerance 1e-6) — fidelity is deterministic, so
any drift means the physics changed.  ``cntcache bench --check`` turns
the flags into a non-zero exit for CI.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import re
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Callable, Iterable

from repro.schemas import BENCH

#: Record format tag; bump the version in :mod:`repro.schemas` when
#: record fields change incompatibly.
BENCH_SCHEMA = BENCH.tag

#: Matches trajectory record filenames: ``BENCH_0007.json``.
_RECORD_RE = re.compile(r"^BENCH_(\d+)\.json$")


class BenchError(ValueError):
    """Raised on malformed bench records or invalid bench requests."""


@dataclass(frozen=True)
class MetricSpec:
    """How one benchmark metric is measured and judged.

    ``kind``
        ``"perf"`` (wall-clock dependent; compared within one machine,
        regression = drop beyond ``tolerance``), ``"fidelity"``
        (deterministic physics; compared across machines, regression =
        any relative drift beyond ``tolerance``), or ``"floor"``
        (``tolerance`` is an absolute minimum the value must clear on
        every record — no trajectory history needed).
    """

    name: str
    kind: str
    tolerance: float
    description: str


#: The declared suite, in report order.
METRICS: tuple[MetricSpec, ...] = (
    MetricSpec(
        "sim.replay_accesses_per_s",
        "perf",
        0.15,
        "single-workload CNT-scheme replay throughput",
    ),
    MetricSpec(
        "sim.array_replay_accesses_per_s",
        "perf",
        0.15,
        "the same replay through the array backend (absent without numpy)",
    ),
    MetricSpec(
        "sim.array_speedup",
        "floor",
        5.0,
        "array/scalar replay throughput ratio (hard floor: 5x)",
    ),
    MetricSpec(
        "exec.serial_accesses_per_s",
        "perf",
        0.15,
        "F3 matrix, one process, empty engine",
    ),
    MetricSpec(
        "exec.parallel_accesses_per_s",
        "perf",
        0.15,
        "F3 matrix across the worker pool",
    ),
    MetricSpec(
        "exec.warm_cache_jobs_per_s",
        "perf",
        0.15,
        "F3 matrix replayed from a warm result cache",
    ),
    MetricSpec(
        "exec.array_serial_accesses_per_s",
        "perf",
        0.15,
        "F3 matrix, one process, array backend (absent without numpy)",
    ),
    MetricSpec(
        "exec.broker_drain_accesses_per_s",
        "perf",
        0.25,
        "F3 matrix drained through the filesystem work broker",
    ),
    MetricSpec(
        "fidelity.cnt_average_saving",
        "fidelity",
        1e-6,
        "mean adaptive saving over the workload suite (paper: 0.222)",
    ),
    MetricSpec(
        "fidelity.write_asymmetry",
        "fidelity",
        1e-6,
        "Table I E_wr1/E_wr0 ratio (paper: ~10X)",
    ),
    MetricSpec(
        "fidelity.delta_balance",
        "fidelity",
        1e-6,
        "Eq. 3 delta_read/delta_write balance (paper: ~1)",
    ),
)

#: name -> spec, for lookups.
METRICS_BY_NAME: dict[str, MetricSpec] = {spec.name: spec for spec in METRICS}


# ------------------------------------------------------------------ #
# record
# ------------------------------------------------------------------ #
@dataclass
class BenchRecord:
    """One appended trajectory point."""

    index: int
    git_sha: str
    timestamp: str
    machine: str
    size: str
    seed: int
    jobs: int
    metrics: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready dump; inverse of :meth:`from_dict`."""
        return {
            "schema": BENCH_SCHEMA,
            "index": self.index,
            "git_sha": self.git_sha,
            "timestamp": self.timestamp,
            "machine": self.machine,
            "size": self.size,
            "seed": self.seed,
            "jobs": self.jobs,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchRecord":
        """Rebuild a record; raises :class:`BenchError` on malformed input."""
        if not isinstance(payload, dict):
            raise BenchError(f"bench record must be a dict: {payload!r}")
        if payload.get("schema") != BENCH_SCHEMA:
            raise BenchError(
                f"bench record schema {payload.get('schema')!r} != "
                f"{BENCH_SCHEMA!r}"
            )
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            raise BenchError("bench record metrics must be a dict")
        try:
            return cls(
                index=int(payload["index"]),
                git_sha=str(payload["git_sha"]),
                timestamp=str(payload["timestamp"]),
                machine=str(payload["machine"]),
                size=str(payload["size"]),
                seed=int(payload["seed"]),
                jobs=int(payload["jobs"]),
                metrics={
                    str(name): float(value) for name, value in metrics.items()
                },
            )
        except (KeyError, TypeError, ValueError) as error:
            raise BenchError(f"malformed bench record: {error}") from None


def machine_fingerprint() -> str:
    """Short stable hash of the hardware/runtime this record was cut on."""
    blob = "|".join(
        (
            platform.machine(),
            platform.system(),
            platform.python_implementation(),
            platform.python_version(),
            str(os.cpu_count() or 0),
        )
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def git_sha(repo: str | Path | None = None) -> str:
    """The checked-out commit, or ``"unknown"`` outside a git repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=None if repo is None else str(repo),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


# ------------------------------------------------------------------ #
# the measured suite
# ------------------------------------------------------------------ #
def collect(
    size: str = "tiny",
    seed: int = 7,
    jobs: int = 2,
    progress: Callable[[str], None] | None = None,
    backend: str | None = None,
) -> dict[str, float]:
    """Measure the declared suite; returns metric name -> value.

    The F3 job matrix (every workload under the five main schemes — the
    largest single-figure plan) drives the exec-engine metrics; the
    serial pass fills a temporary result cache that the warm-cache pass
    replays.  Fidelity numbers come from the same resolved results plus
    the derived Table I energy model.

    ``backend`` restricts the suite: ``None`` (default) measures both
    backends when numpy is importable, ``"scalar"`` skips the array
    metrics, ``"array"`` raises :class:`BenchError` when numpy is
    missing instead of silently degrading.
    """
    import tempfile

    from repro.cnfet.energy import BitEnergyModel
    from repro.cnfet.sram import Sram6TCell
    from repro.core.config import CNTCacheConfig
    from repro.exec import ExecEngine
    from repro.harness.experiments import EXPERIMENT_PLANS, run_experiment
    from repro.harness.runner import replay
    from repro.workloads.program import get_workload

    def say(line: str) -> None:
        if progress is not None:
            progress(line)

    metrics: dict[str, float] = {}

    model = BitEnergyModel.from_cell(Sram6TCell())
    metrics["fidelity.write_asymmetry"] = model.write_asymmetry
    metrics["fidelity.delta_balance"] = model.delta_read / model.delta_write

    say(f"[bench] replay: stream/{size} under the cnt scheme")
    run = get_workload("stream").build(size, seed=seed)
    started = time.perf_counter()
    sim = replay(CNTCacheConfig(), run.trace, run.preloads)
    wall = time.perf_counter() - started
    metrics["sim.replay_accesses_per_s"] = (
        sim.stats.accesses / wall if wall > 0 else 0.0
    )

    from repro.backends import array_available, backend_names

    if backend is not None and backend not in backend_names():
        raise BenchError(
            f"unknown backend {backend!r}; known: {', '.join(backend_names())}"
        )
    with_array = backend != "scalar" and array_available()
    if backend == "array" and not with_array:
        raise BenchError(
            "backend 'array' requested but numpy is not importable "
            "(pip install repro[array])"
        )
    if with_array:
        say(f"[bench] replay: stream/{size}, array vs scalar backend")
        # Best-of-N both sides: the speedup floor is a hard CI gate, so
        # neither numerator nor denominator should ride one unlucky
        # scheduler tick.
        best_scalar = metrics["sim.replay_accesses_per_s"]
        for _ in range(2):
            started = time.perf_counter()
            timed = replay(CNTCacheConfig(), run.trace, run.preloads)
            wall = time.perf_counter() - started
            if wall > 0:
                best_scalar = max(best_scalar, timed.stats.accesses / wall)
        best_array = 0.0
        for _ in range(3):
            started = time.perf_counter()
            timed = replay(
                CNTCacheConfig(), run.trace, run.preloads, backend="array"
            )
            wall = time.perf_counter() - started
            if wall > 0:
                best_array = max(best_array, timed.stats.accesses / wall)
        metrics["sim.array_replay_accesses_per_s"] = best_array
        metrics["sim.array_speedup"] = (
            best_array / best_scalar if best_scalar else 0.0
        )

    f3_jobs = list(EXPERIMENT_PLANS["f3"](size, seed).values())
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as cache_dir:
        say(f"[bench] exec serial: {len(f3_jobs)} F3 jobs, filling cache")
        serial = ExecEngine(jobs=1, cache_dir=cache_dir)
        started = time.perf_counter()
        results = serial.run_jobs(f3_jobs)
        wall = time.perf_counter() - started
        accesses = sum(result.accesses for result in results)
        metrics["exec.serial_accesses_per_s"] = (
            accesses / wall if wall > 0 else 0.0
        )

        say("[bench] fidelity: F3 average saving (memoized results)")
        f3 = run_experiment("f3", size=size, seed=seed, engine=serial)
        metrics["fidelity.cnt_average_saving"] = float(
            f3.data["cnt_average"]
        )

        say(f"[bench] exec warm cache: replaying {len(f3_jobs)} jobs")
        warm = ExecEngine(jobs=1, cache_dir=cache_dir)
        started = time.perf_counter()
        warm_results = warm.run_jobs(f3_jobs)
        wall = time.perf_counter() - started
        metrics["exec.warm_cache_jobs_per_s"] = (
            len(warm_results) / wall if wall > 0 else 0.0
        )

    say(f"[bench] exec parallel: {len(f3_jobs)} F3 jobs, {jobs} workers")
    parallel = ExecEngine(jobs=max(jobs, 2))
    started = time.perf_counter()
    results = parallel.run_jobs(f3_jobs)
    wall = time.perf_counter() - started
    accesses = sum(result.accesses for result in results)
    metrics["exec.parallel_accesses_per_s"] = (
        accesses / wall if wall > 0 else 0.0
    )

    if with_array:
        say(f"[bench] exec serial: {len(f3_jobs)} F3 jobs, array backend")
        array_serial = ExecEngine(jobs=1, backend="array")
        started = time.perf_counter()
        results = array_serial.run_jobs(f3_jobs)
        wall = time.perf_counter() - started
        accesses = sum(result.accesses for result in results)
        metrics["exec.array_serial_accesses_per_s"] = (
            accesses / wall if wall > 0 else 0.0
        )

    say(f"[bench] exec broker: {len(f3_jobs)} F3 jobs through a local fleet")
    from repro.exec import BrokerConfig

    with tempfile.TemporaryDirectory(prefix="bench-broker-") as broker_dir:
        # Generous TTL: this leg measures drain throughput, not crash
        # recovery, so no lease should ever expire mid-bench.
        broker = ExecEngine(
            jobs=max(jobs, 2),
            broker=BrokerConfig(
                root=broker_dir, poll_s=0.05, lease_ttl_s=60.0
            ),
        )
        started = time.perf_counter()
        results = broker.run_jobs(f3_jobs)
        wall = time.perf_counter() - started
        accesses = sum(result.accesses for result in results)
        metrics["exec.broker_drain_accesses_per_s"] = (
            accesses / wall if wall > 0 else 0.0
        )

    return metrics


# ------------------------------------------------------------------ #
# trajectory persistence
# ------------------------------------------------------------------ #
def load_trajectory(directory: str | Path) -> list[BenchRecord]:
    """Parse every ``BENCH_<n>.json`` in ``directory``, index order.

    Unparseable or foreign-schema files are skipped (a trajectory
    survives a torn write); a missing directory is an empty trajectory.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    records: list[BenchRecord] = []
    for path in sorted(directory.iterdir()):
        if _RECORD_RE.match(path.name) is None:
            continue
        try:
            records.append(BenchRecord.from_dict(json.loads(path.read_text())))
        except (OSError, ValueError):
            continue
    records.sort(key=lambda record: record.index)
    return records


def next_index(directory: str | Path) -> int:
    """The index the next appended record will carry (1-based)."""
    directory = Path(directory)
    highest = 0
    if directory.is_dir():
        for path in directory.iterdir():
            match = _RECORD_RE.match(path.name)
            if match is not None:
                highest = max(highest, int(match.group(1)))
    return highest + 1


def make_record(
    metrics: dict[str, float],
    *,
    directory: str | Path,
    size: str,
    seed: int,
    jobs: int,
) -> BenchRecord:
    """Stamp a metric map into the next record of ``directory``."""
    return BenchRecord(
        index=next_index(directory),
        git_sha=git_sha(),
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        machine=machine_fingerprint(),
        size=size,
        seed=seed,
        jobs=jobs,
        metrics=dict(metrics),
    )


def append_record(record: BenchRecord, directory: str | Path) -> Path:
    """Write ``record`` as ``BENCH_<index>.json``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{record.index:04d}.json"
    if path.exists():
        raise BenchError(f"trajectory record already exists: {path}")
    path.write_text(
        json.dumps(record.to_dict(), sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return path


# ------------------------------------------------------------------ #
# regression gate
# ------------------------------------------------------------------ #
@dataclass(frozen=True)
class Regression:
    """One flagged metric: value vs. the trajectory baseline."""

    metric: str
    value: float
    baseline: float
    tolerance: float
    kind: str

    def describe(self) -> str:
        """One human line for the CLI/CI log."""
        if self.kind == "perf":
            drop = 1.0 - self.value / self.baseline if self.baseline else 0.0
            return (
                f"{self.metric}: {self.value:.1f} is {drop:.1%} below the "
                f"baseline {self.baseline:.1f} (tolerance {self.tolerance:.0%})"
            )
        if self.kind == "floor":
            return (
                f"{self.metric}: {self.value:.2f} is below the hard floor "
                f"{self.tolerance:g}"
            )
        return (
            f"{self.metric}: {self.value!r} drifted from the baseline "
            f"{self.baseline!r} (fidelity tolerance {self.tolerance:g})"
        )


def _baseline_for(
    spec: MetricSpec,
    record: BenchRecord,
    trajectory: Iterable[BenchRecord],
    window: int,
) -> float | None:
    values = [
        prior.metrics[spec.name]
        for prior in trajectory
        if prior.index != record.index
        and spec.name in prior.metrics
        and prior.size == record.size
        and prior.seed == record.seed
        and (spec.kind != "perf" or prior.machine == record.machine)
    ]
    if not values:
        return None
    return float(median(values[-max(window, 1):]))


def compare(
    record: BenchRecord,
    trajectory: Iterable[BenchRecord],
    window: int = 5,
) -> list[Regression]:
    """Judge ``record`` against the trajectory; returns the regressions.

    Baselines are the median of the last ``window`` comparable records
    per metric; a metric with no comparable history passes vacuously
    (the first record seeds the trajectory, it cannot regress).
    """
    trajectory = list(trajectory)
    regressions: list[Regression] = []
    for spec in METRICS:
        value = record.metrics.get(spec.name)
        if value is None:
            continue
        if spec.kind == "floor":
            # An absolute gate: no history needed, every record must clear it.
            if value < spec.tolerance:
                regressions.append(
                    Regression(
                        spec.name, value, spec.tolerance, spec.tolerance,
                        "floor",
                    )
                )
            continue
        baseline = _baseline_for(spec, record, trajectory, window)
        if baseline is None:
            continue
        if spec.kind == "perf":
            if value < baseline * (1.0 - spec.tolerance):
                regressions.append(
                    Regression(
                        spec.name, value, baseline, spec.tolerance, "perf"
                    )
                )
        else:
            scale = max(abs(baseline), 1e-12)
            if abs(value - baseline) / scale > spec.tolerance:
                regressions.append(
                    Regression(
                        spec.name, value, baseline, spec.tolerance, "fidelity"
                    )
                )
    return regressions


__all__ = [
    "BENCH_SCHEMA",
    "BenchError",
    "BenchRecord",
    "METRICS",
    "METRICS_BY_NAME",
    "MetricSpec",
    "Regression",
    "append_record",
    "collect",
    "compare",
    "git_sha",
    "load_trajectory",
    "machine_fingerprint",
    "make_record",
    "next_index",
]

"""The metric-name registry: every probe/trace name, in one place.

Probe counters, timers, gauges and trace spans are addressed by dotted
lowercase names (``cache.hits``, ``exec.queue_wait``).  Typos in those
names fail silently — ``exec.retires`` would simply accumulate next to
``exec.retries`` — so lint rule R008
(:class:`repro.lint.rules.metrics.MetricNameRule`) checks every literal
name at an instrumented call site against this registry.

Names built dynamically (``f"phase.{job.kind}"``,
``f"codec.{name}.applies"``) cannot be checked statically; their
*families* are documented in :data:`METRIC_FAMILIES` and the static rule
skips non-literal arguments.
"""

from __future__ import annotations

#: Every statically-known probe/trace metric name.
METRIC_NAMES: frozenset[str] = frozenset(
    {
        # substrate cache demand path
        "cache.accesses",
        "cache.bypass_writes",
        "cache.demand_reads",
        "cache.demand_writes",
        "cache.fills",
        "cache.flush_writebacks",
        "cache.flushes",
        "cache.hits",
        "cache.misses",
        "cache.writebacks",
        # exec engine
        "exec.batch",
        "exec.cache_corrupt",
        "exec.cache_hits",
        "exec.cache_read_errors",
        "exec.cache_write_errors",
        "exec.executed",
        "exec.failures",
        "exec.memo_hits",
        "exec.pool_rebuilds",
        "exec.queue_wait",
        "exec.requested",
        "exec.retries",
        "exec.serial_fallbacks",
        "exec.timeouts",
        # exec broker (distributed backend: leases, reclaim, quarantine)
        "exec.broker_published",
        "exec.lease_acquired",
        "exec.lease_released",
        "exec.lease_renewals",
        "exec.quarantined",
        "exec.reclaims",
        "exec.workers_lost",
        # live fleet telemetry (repro.obs.telemetry + tailing readers)
        "broker.queue_depth",
        "obs.torn_lines",
        "telemetry.frames",
        "telemetry.suppressed",
        "telemetry.write_errors",
        # worker self-reported gauges (repro.exec.broker.run_worker)
        "worker.claimed",
        "worker.failures",
        "worker.jobs_done",
        # per-process workload memo
        "workload.builds",
        "workload.memo_hits",
        # phases (the statically-spelled ones; per-kind phases are dynamic)
        "phase.audit",
        "phase.l1_filter",
        "phase.l2",
        "phase.oracle",
        "phase.trace",
        "phase.workload",
        "phase.workload_build",
        # job-lifecycle trace spans (one per job kind)
        "job.audit",
        "job.l2",
        "job.oracle",
        "job.trace",
        "job.workload",
        # tracer self-observation gauges
        "trace.dropped",
        "trace.events",
    }
)

#: Dynamic name families (prefix -> where they are minted).  Purely
#: documentation; the static rule cannot check f-string names.
METRIC_FAMILIES: dict[str, str] = {
    "codec.": "repro/encoding/base.py (per-codec applies/bytes counters)",
    "workload.": "repro/workloads/program.py (per-workload build events)",
    "phase.": "repro/exec/worker.py (per-job-kind phase timers)",
    "job.": "repro/exec/worker.py (per-job-kind trace spans)",
}


def is_registered(name: str) -> bool:
    """True if ``name`` is a registered metric or in a dynamic family."""
    if name in METRIC_NAMES:
        return True
    return any(name.startswith(prefix) for prefix in METRIC_FAMILIES)


__all__ = ["METRIC_NAMES", "METRIC_FAMILIES", "is_registered"]

"""The stable public facade of the reproduction package.

Everything a consumer (notebook, script, CI job, downstream experiment)
needs goes through five keyword-only entry points:

* :func:`make_cache` — construct a configured simulator behind the
  :class:`~repro.backends.CacheBackend` protocol (the only sanctioned
  construction site; lint rule R006 flags direct ``CNTCache(...)``
  calls elsewhere in the package, and direct construction warns).
  ``backend="scalar"`` (default) is the bit-exact reference
  interpreter; ``backend="array"`` is the integer-packed engine with
  identical stats at an order of magnitude higher throughput — see
  :func:`repro.backends.backends` for the registry.
* :func:`make_engine` — construct an :class:`~repro.exec.ExecEngine`
  (dedup + disk cache + worker processes + observability).
* :func:`simulate` — one (workload, config) energy measurement.
* :func:`plan` — the :class:`~repro.exec.SimJob` list an experiment
  would resolve, without running anything.
* :func:`profile` — replay experiments with probes on; returns a
  :class:`~repro.obs.ProfileReport` (the ``cntcache profile`` command).

Legacy spellings (``repro.harness.run_workload``, direct ``CNTCache``
construction) still work but emit :class:`DeprecationWarning`; see
docs/API.md for the migration table.

Imports inside the functions are deliberate: the facade sits above every
other layer, so importing it must stay cycle-free and cheap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from pathlib import Path

    from repro.backends import CacheBackend
    from repro.core.config import CNTCacheConfig
    from repro.exec import BrokerConfig, ExecEngine, SimJob
    from repro.harness.runner import RunResult
    from repro.obs import Obs, ProfileReport
    from repro.resilience import ResilienceConfig
    from repro.workloads.program import WorkloadRun

__all__ = ["make_cache", "make_engine", "plan", "profile", "simulate"]


def make_cache(
    *,
    config: "CNTCacheConfig | None" = None,
    backend: str = "scalar",
    **overrides: Any,
) -> "CacheBackend":
    """A configured simulator instance.

    ``config`` is used as-is when given; field overrides (``scheme=...``,
    ``size=...``) apply on top of it, or on top of the paper-default
    config when ``config`` is omitted.  ``backend`` selects the engine
    from the :func:`repro.backends.backends` registry: ``"scalar"`` is
    the bit-exact reference interpreter, ``"array"`` the vectorized
    engine with bit-identical stats (requires numpy).
    """
    from repro.backends import make_backend
    from repro.core.config import CNTCacheConfig

    if config is None:
        config = CNTCacheConfig(**overrides)
    elif overrides:
        config = config.variant(**overrides)
    return make_backend(backend, config)


def make_engine(
    *,
    jobs: int = 1,
    cache_dir: "str | Path | None" = None,
    progress: Callable[[str], None] | None = None,
    obs: "Obs | None" = None,
    resilience: "ResilienceConfig | None" = None,
    backend: str | None = None,
    exec_backend: str | None = None,
    broker: "BrokerConfig | str | Path | None" = None,
) -> "ExecEngine":
    """An execution engine (see :class:`repro.exec.ExecEngine`).

    ``resilience`` tunes the fault-tolerance policy (retries, backoff,
    per-job timeouts, keep-going batches — see
    :class:`repro.resilience.ResilienceConfig`); ``None`` means the
    self-healing defaults.  ``backend`` overrides the simulation engine
    of every job the engine resolves (``None`` respects each job's own
    selection).  ``exec_backend`` names the *execution* strategy
    (``local-serial``/``local-pool``/``broker`` — see
    :func:`repro.exec.exec_backends`); ``broker`` points at a shared
    work-broker directory (a path or a
    :class:`repro.exec.BrokerConfig`) and implies the ``broker``
    backend — the engine coordinates a worker fleet through the
    broker's cache (see docs/DISTRIBUTED.md).
    """
    from repro.exec import ExecEngine

    return ExecEngine(
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        obs=obs,
        resilience=resilience,
        backend=backend,
        exec_backend=exec_backend,
        broker=broker,
    )


def simulate(
    *,
    workload: "str | WorkloadRun",
    config: "CNTCacheConfig | None" = None,
    size: str = "small",
    seed: int = 7,
    engine: "ExecEngine | None" = None,
    obs: "Obs | None" = None,
    backend: str = "scalar",
) -> "RunResult":
    """One (workload, config) measurement.

    ``workload`` is a registered name (the trace is built at
    ``size``/``seed``) or an already-built :class:`WorkloadRun` (its own
    name/size/seed win).  With an ``engine`` the measurement is declared
    as a job — deduplicated, cacheable, parallelizable; without one it
    replays in-process.  ``obs`` follows the harness-wide convention
    documented in :mod:`repro.harness.runner`.  ``backend`` selects the
    simulation engine (bit-identical stats across backends; an engine's
    own ``backend`` override wins when set).
    """
    from repro.core.config import CNTCacheConfig
    from repro.harness.runner import _run_workload
    from repro.obs import probe
    from repro.workloads.program import WorkloadRun, get_workload

    if config is None:
        config = CNTCacheConfig()
    if isinstance(workload, WorkloadRun):
        name, size, seed = workload.name, workload.size, workload.seed
        run = workload
    else:
        name, run = workload, None

    if engine is not None:
        from repro.exec import workload_job
        from repro.harness.runner import RunResult

        with engine.observing(obs):
            result = engine.run_job(
                workload_job(config, name, size, seed, backend=backend)
            )
        return RunResult.from_exec(result, config)

    with probe.recording(obs):
        if run is None:
            run = get_workload(name).build(size, seed=seed)
        return _run_workload(config, run, backend=backend)


def plan(
    *, experiment: str, size: str = "small", seed: int = 7
) -> "list[SimJob]":
    """The jobs one experiment would resolve (empty for pure-model tables)."""
    from repro.harness.experiments import plan_experiment

    return plan_experiment(experiment, size=size, seed=seed)


def profile(
    *,
    experiments: Iterable[str] | None = None,
    size: str = "small",
    seed: int = 7,
    jobs: int = 1,
    cache_dir: "str | Path | None" = None,
    manifest: "str | Path | None" = None,
    top: int = 10,
    progress: Callable[[str], None] | None = None,
    resilience: "ResilienceConfig | None" = None,
    backend: str | None = None,
) -> "ProfileReport":
    """Replay experiments with probes on; returns the breakdown report.

    ``backend`` overrides the simulation engine of every profiled job
    (``None`` = each job's own selection, i.e. the scalar default).
    """
    from repro.obs.profile import profile_experiments

    return profile_experiments(
        experiments,
        size=size,
        seed=seed,
        jobs=jobs,
        cache_dir=cache_dir,
        manifest=manifest,
        top=top,
        progress=progress,
        resilience=resilience,
        backend=backend,
    )

"""Energy and event accounting for a simulated cache run.

All energies are femtojoules of *dynamic* energy in the L1 data array and
its H&D metadata columns, which is exactly the quantity the paper's 22.2%
claim is about.  The breakdown mirrors the architecture: demand reads,
demand writes, fills, writebacks, metadata traffic, deferred re-encode
writes and the encoder/predictor logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


class StatsError(ValueError):
    """Raised on invalid stats operations."""


#: Names of the energy components, in reporting order.
ENERGY_COMPONENTS = (
    "data_read_fj",
    "data_write_fj",
    "fill_fj",
    "writeback_fj",
    "metadata_read_fj",
    "metadata_write_fj",
    "reencode_fj",
    "logic_fj",
    "peripheral_fj",
    "leakage_fj",
)


@dataclass
class EnergyStats:
    """Counters and energy accumulators of one simulation."""

    # events
    accesses: int = 0
    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    windows_completed: int = 0
    direction_switches: int = 0
    partition_flips: int = 0
    pending_dropped: int = 0
    forced_drains: int = 0

    # energy, femtojoules
    data_read_fj: float = 0.0
    data_write_fj: float = 0.0
    fill_fj: float = 0.0
    writeback_fj: float = 0.0
    metadata_read_fj: float = 0.0
    metadata_write_fj: float = 0.0
    reencode_fj: float = 0.0
    logic_fj: float = 0.0
    peripheral_fj: float = 0.0
    leakage_fj: float = 0.0

    extra: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # derived
    # ------------------------------------------------------------------ #
    @property
    def total_fj(self) -> float:
        """Total dynamic energy, fJ (the paper's reported metric)."""
        return sum(getattr(self, name) for name in ENERGY_COMPONENTS)

    @property
    def data_fj(self) -> float:
        """Data-array-only energy (no metadata/logic), fJ."""
        return (
            self.data_read_fj
            + self.data_write_fj
            + self.fill_fj
            + self.writeback_fj
            + self.reencode_fj
        )

    @property
    def overhead_fj(self) -> float:
        """Scheme overhead energy (metadata traffic + logic), fJ."""
        return self.metadata_read_fj + self.metadata_write_fj + self.logic_fj

    @property
    def hit_rate(self) -> float:
        """Demand hit rate."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def energy_per_access_fj(self) -> float:
        """Average dynamic energy per demand access, fJ."""
        if self.accesses == 0:
            return 0.0
        return self.total_fj / self.accesses

    def savings_vs(self, baseline: "EnergyStats") -> float:
        """Fractional energy saving relative to ``baseline`` (0.222 = 22.2%)."""
        if baseline.total_fj <= 0:
            raise StatsError("baseline has no energy to compare against")
        return 1.0 - self.total_fj / baseline.total_fj

    # ------------------------------------------------------------------ #
    # combination / export
    # ------------------------------------------------------------------ #
    def __add__(self, other: "EnergyStats") -> "EnergyStats":
        merged = EnergyStats()
        for spec in fields(EnergyStats):
            if spec.name == "extra":
                continue
            setattr(
                merged,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        for key in set(self.extra) | set(other.extra):
            merged.extra[key] = self.extra.get(key, 0.0) + other.extra.get(key, 0.0)
        return merged

    def as_dict(self) -> dict[str, float | int]:
        """Flat-dict view (counters + energies + derived)."""
        out: dict[str, float | int] = {
            spec.name: getattr(self, spec.name)
            for spec in fields(EnergyStats)
            if spec.name != "extra"
        }
        out["total_fj"] = self.total_fj
        out["data_fj"] = self.data_fj
        out["overhead_fj"] = self.overhead_fj
        out["hit_rate"] = self.hit_rate
        out["energy_per_access_fj"] = self.energy_per_access_fj
        out.update(self.extra)
        return out

    def report(self) -> str:
        """Multi-line human-readable breakdown."""
        lines = [
            f"accesses          {self.accesses:>12}",
            f"  reads/writes    {self.reads:>12} / {self.writes}",
            f"  hit rate        {self.hit_rate:>12.4f}",
            f"  evictions/wb    {self.evictions:>12} / {self.writebacks}",
            f"windows completed {self.windows_completed:>12}",
            f"direction switches{self.direction_switches:>12}"
            f" ({self.partition_flips} partition flips)",
            "energy (fJ):",
        ]
        for name in ENERGY_COMPONENTS:
            lines.append(f"  {name:<18} {getattr(self, name):>16.1f}")
        lines.append(f"  {'total_fj':<18} {self.total_fj:>16.1f}")
        lines.append(
            f"  per access        {self.energy_per_access_fj:>16.2f}"
        )
        return "\n".join(lines)

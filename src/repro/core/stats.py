"""Energy and event accounting for a simulated cache run.

All energies are femtojoules of *dynamic* energy in the L1 data array and
its H&D metadata columns, which is exactly the quantity the paper's 22.2%
claim is about.  The breakdown mirrors the architecture: demand reads,
demand writes, fills, writebacks, metadata traffic, deferred re-encode
writes and the encoder/predictor logic.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field, fields


class StatsError(ValueError):
    """Raised on invalid stats operations."""


#: Names of the energy components, in reporting order.
ENERGY_COMPONENTS = (
    "data_read_fj",
    "data_write_fj",
    "fill_fj",
    "writeback_fj",
    "metadata_read_fj",
    "metadata_write_fj",
    "reencode_fj",
    "logic_fj",
    "peripheral_fj",
    "leakage_fj",
)


@dataclass
class EnergyStats:
    """Counters and energy accumulators of one simulation."""

    # events
    accesses: int = 0
    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    windows_completed: int = 0
    direction_switches: int = 0
    partition_flips: int = 0
    pending_dropped: int = 0
    forced_drains: int = 0

    # energy, femtojoules
    data_read_fj: float = 0.0
    data_write_fj: float = 0.0
    fill_fj: float = 0.0
    writeback_fj: float = 0.0
    metadata_read_fj: float = 0.0
    metadata_write_fj: float = 0.0
    reencode_fj: float = 0.0
    logic_fj: float = 0.0
    peripheral_fj: float = 0.0
    leakage_fj: float = 0.0

    extra: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # accumulation (the only sanctioned way in — lint rule R001)
    # ------------------------------------------------------------------ #
    def add(self, component: str, fj: float) -> None:
        """Accumulate ``fj`` femtojoules into a named energy component.

        All simulator code must meter energy through here (enforced by
        lint rule R001): the component name is validated against
        :data:`ENERGY_COMPONENTS` and the increment must be finite and
        non-negative, so a typo'd component or a NaN can never silently
        corrupt the paper's headline metric.
        """
        if component not in ENERGY_COMPONENTS:
            raise StatsError(
                f"unknown energy component {component!r}; "
                f"known: {ENERGY_COMPONENTS}"
            )
        if not math.isfinite(fj) or fj < 0:
            raise StatsError(
                f"energy increment for {component!r} must be finite and "
                f"non-negative, got {fj!r}"
            )
        setattr(self, component, getattr(self, component) + fj)

    def add_extra(self, key: str, value: float) -> None:
        """Accumulate into a free-form ``extra`` metric."""
        if not math.isfinite(value):
            raise StatsError(f"extra {key!r} increment must be finite")
        self.extra[key] = self.extra.get(key, 0.0) + value

    # ------------------------------------------------------------------ #
    # derived
    # ------------------------------------------------------------------ #
    @property
    def total_fj(self) -> float:
        """Total dynamic energy, fJ (the paper's reported metric).

        Compensated (``math.fsum``) so the total is exact regardless of
        component magnitudes.
        """
        return math.fsum(getattr(self, name) for name in ENERGY_COMPONENTS)

    @property
    def data_fj(self) -> float:
        """Data-array-only energy (no metadata/logic), fJ."""
        return math.fsum(
            (
                self.data_read_fj,
                self.data_write_fj,
                self.fill_fj,
                self.writeback_fj,
                self.reencode_fj,
            )
        )

    @property
    def overhead_fj(self) -> float:
        """Scheme overhead energy (metadata traffic + logic), fJ."""
        return math.fsum(
            (self.metadata_read_fj, self.metadata_write_fj, self.logic_fj)
        )

    @property
    def hit_rate(self) -> float:
        """Demand hit rate."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def energy_per_access_fj(self) -> float:
        """Average dynamic energy per demand access, fJ."""
        if self.accesses == 0:
            return 0.0
        return self.total_fj / self.accesses

    def savings_vs(self, baseline: "EnergyStats") -> float:
        """Fractional energy saving relative to ``baseline`` (0.222 = 22.2%)."""
        if baseline.total_fj <= 0:
            raise StatsError("baseline has no energy to compare against")
        return 1.0 - self.total_fj / baseline.total_fj

    # ------------------------------------------------------------------ #
    # combination / export
    # ------------------------------------------------------------------ #
    @classmethod
    def merge(cls, parts: Iterable["EnergyStats"]) -> "EnergyStats":
        """Combine many runs into one (multi-level/suite aggregation).

        Event counters are summed exactly (ints); every energy component
        (and every ``extra`` metric) is combined with ``math.fsum``, so
        the merged totals are deterministic and independent of the order
        in which the parts are supplied — shard results can be merged in
        completion order without perturbing the reported femtojoules.
        """
        materialized = list(parts)
        merged = cls()
        energy_names = set(ENERGY_COMPONENTS)
        for spec in fields(cls):
            if spec.name == "extra":
                continue
            if spec.name in energy_names:
                value: float | int = math.fsum(
                    getattr(part, spec.name) for part in materialized
                )
            else:
                value = sum(getattr(part, spec.name) for part in materialized)
            setattr(merged, spec.name, value)
        keys = sorted({key for part in materialized for key in part.extra})
        for key in keys:
            merged.extra[key] = math.fsum(
                part.extra.get(key, 0.0) for part in materialized
            )
        return merged

    def __add__(self, other: "EnergyStats") -> "EnergyStats":
        return EnergyStats.merge((self, other))

    def to_dict(self) -> dict:
        """Lossless, JSON-ready snapshot — the exact inverse of
        :meth:`from_dict`.

        Unlike :meth:`as_dict` (a flat reporting view that mixes in derived
        quantities), this carries exactly the dataclass state: every counter,
        every energy component and the ``extra`` map, nothing else.  Because
        JSON round-trips Python ints and finite floats exactly,
        ``EnergyStats.from_dict(json.loads(json.dumps(stats.to_dict())))``
        reproduces ``stats`` bit for bit — the property the exec engine's
        result cache and worker transport rely on.
        """
        payload: dict = {
            spec.name: getattr(self, spec.name)
            for spec in fields(self)
            if spec.name != "extra"
        }
        payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "EnergyStats":
        """Rebuild a stats object from a :meth:`to_dict` snapshot.

        Validation is strict in both directions — unknown keys and missing
        keys are errors — so a cache entry written by a different engine
        schema can never be half-read into silently wrong numbers.
        """
        if not isinstance(payload, dict):
            raise StatsError(
                f"stats payload must be a dict, got {type(payload).__name__}"
            )
        specs = [spec for spec in fields(cls) if spec.name != "extra"]
        expected = {spec.name for spec in specs} | {"extra"}
        unknown = set(payload) - expected
        missing = expected - set(payload)
        if unknown or missing:
            raise StatsError(
                f"stats payload key mismatch: unknown={sorted(unknown)} "
                f"missing={sorted(missing)}"
            )
        energy_names = set(ENERGY_COMPONENTS)
        stats = cls()
        for spec in specs:
            value = payload[spec.name]
            if spec.name in energy_names:
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise StatsError(
                        f"{spec.name} must be a number, got {value!r}"
                    )
                value = float(value)
                if not math.isfinite(value) or value < 0:
                    raise StatsError(
                        f"{spec.name} must be finite and non-negative, "
                        f"got {value!r}"
                    )
            else:
                if isinstance(value, bool) or not isinstance(value, int):
                    raise StatsError(
                        f"{spec.name} must be an int, got {value!r}"
                    )
            setattr(stats, spec.name, value)
        extra = payload["extra"]
        if not isinstance(extra, dict):
            raise StatsError(f"extra must be a dict, got {type(extra).__name__}")
        for key, value in extra.items():
            if not isinstance(key, str):
                raise StatsError(f"extra keys must be strings, got {key!r}")
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise StatsError(f"extra {key!r} must be a number, got {value!r}")
            if not math.isfinite(float(value)):
                raise StatsError(f"extra {key!r} must be finite, got {value!r}")
            stats.extra[key] = float(value)
        return stats

    def as_dict(self) -> dict[str, float | int]:
        """Flat-dict view (counters + energies + derived)."""
        out: dict[str, float | int] = {
            spec.name: getattr(self, spec.name)
            for spec in fields(EnergyStats)
            if spec.name != "extra"
        }
        out["total_fj"] = self.total_fj
        out["data_fj"] = self.data_fj
        out["overhead_fj"] = self.overhead_fj
        out["hit_rate"] = self.hit_rate
        out["energy_per_access_fj"] = self.energy_per_access_fj
        out.update(self.extra)
        return out

    def report(self) -> str:
        """Multi-line human-readable breakdown."""
        lines = [
            f"accesses          {self.accesses:>12}",
            f"  reads/writes    {self.reads:>12} / {self.writes}",
            f"  hit rate        {self.hit_rate:>12.4f}",
            f"  evictions/wb    {self.evictions:>12} / {self.writebacks}",
            f"windows completed {self.windows_completed:>12}",
            f"direction switches{self.direction_switches:>12}"
            f" ({self.partition_flips} partition flips)",
            "energy (fJ):",
        ]
        for name in ENERGY_COMPONENTS:
            lines.append(f"  {name:<18} {getattr(self, name):>16.1f}")
        lines.append(f"  {'total_fj':<18} {self.total_fj:>16.1f}")
        lines.append(
            f"  per access        {self.energy_per_access_fj:>16.2f}"
        )
        return "\n".join(lines)

"""Configuration of a CNT-Cache (or baseline) simulation."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from dataclasses import fields as dataclass_fields
from typing import Any

from repro.cache.replacement import replacement_policy_names
from repro.cnfet.energy import (
    ENCODER_LOGIC_FJ,
    PERIPHERAL_FJ_PER_ACCESS,
    PREDICTOR_LOGIC_FJ,
    BitEnergyModel,
)
from repro.cnfet.leakage import LeakageModel
from repro.predictor.history import history_bits

#: Encoding schemes selectable via :attr:`CNTCacheConfig.scheme`.
#:
#: ``baseline``       unencoded CNFET cache (the paper's comparison point)
#: ``static-invert``  every line stored complemented, unconditionally
#: ``fill-greedy``    direction chosen once at fill (write-preferred), fixed
#: ``dbi``            classic per-word data-bus inversion at write time
#: ``invert``         CNT-Cache with whole-line codec (paper's "baseline
#:                    encoding approach", K = 1)
#: ``cnt``            full CNT-Cache: partitioned codec + Algorithm 1
#: ``cnt-quant``      hardware-cheapened CNT-Cache: the exact Wr_num
#:                    counter is replaced by a 2-bit write-intensity
#:                    counter (extension study, ablation A6)
#: ``cnt-shared``     hardware-cheapened CNT-Cache: one history-counter
#:                    pair shared by all ways of a set, amortising the H
#:                    bits at the cost of inter-line aliasing (A6)
SCHEMES = (
    "baseline",
    "static-invert",
    "fill-greedy",
    "dbi",
    "invert",
    "cnt",
    "cnt-quant",
    "cnt-shared",
)


class ConfigError(ValueError):
    """Raised on inconsistent configuration."""


@dataclass(frozen=True)
class CNTCacheConfig:
    """Full description of one simulated D-Cache instance.

    Geometry defaults follow the usual embedded L1 D-Cache of DATE-era
    evaluations: 32 KiB, 4-way, 64-byte lines, LRU, write-back +
    write-allocate.  Algorithm defaults follow the paper: window ``W = 16``
    (the draft text's "15 accesses" checkpoint rounded to the power of two
    that makes the history counters exactly 4+4 bits), ``K = 8`` partitions,
    no hysteresis.
    """

    # geometry
    size: int = 32 * 1024
    assoc: int = 4
    line_size: int = 64
    replacement: str = "lru"
    #: Write handling: ``wb-wa`` (write-back + write-allocate, the default
    #: and the paper's setting), ``wt-wa`` (write-through + allocate),
    #: ``wt-nwa`` (write-through + no-write-allocate: write misses bypass
    #: the array) or ``wb-nwa``.
    write_policy: str = "wb-wa"

    # encoding scheme
    scheme: str = "cnt"
    window: int = 16
    partitions: int = 8
    delta_t: float = 0.0
    dbi_word_bytes: int = 4

    # deferred-update FIFOs
    fifo_depth: int = 8
    drain_per_access: int = 1

    # energy accounting
    energy: BitEnergyModel = field(default_factory=BitEnergyModel.paper_table1)
    #: ``line``: every demand access activates the whole row, so all L bits
    #: of the line are read (reads) or written (writes) — this is the
    #: granularity the paper's Eq. 4/5 charge and the default.  ``word``:
    #: only the accessed bytes are metered (a divided-wordline array);
    #: provided for the access-granularity ablation.
    access_granularity: str = "line"
    account_metadata: bool = True
    #: Constant energy of the mux/inverter datapath per access, fJ.
    #: Calibration constants live with the device physics in
    #: :mod:`repro.cnfet.energy` (lint rule R002).
    encoder_logic_fj: float = ENCODER_LOGIC_FJ
    #: Constant energy of one predictor table lookup + compare, fJ.
    predictor_logic_fj: float = PREDICTOR_LOGIC_FJ
    #: Value-independent energy of one array activation, fJ — the
    #: repository's single pinned calibration constant (see
    #: :data:`repro.cnfet.energy.PERIPHERAL_FJ_PER_ACCESS` for the full
    #: rationale and the sensitivity ablation pointer).
    peripheral_fj_per_access: float = PERIPHERAL_FJ_PER_ACCESS
    #: Direction word assigned to a line at fill time (adaptive schemes):
    #: ``neutral`` (all uninverted), ``read-greedy`` (per-partition majority
    #: toward stored '1's — cheap reads; the default, since demand reads
    #: dominate), or ``write-greedy`` (toward stored '0's).
    fill_policy: str = "read-greedy"
    #: Optional state-dependent leakage accounting (extension A9).  None
    #: (the default) reproduces the paper's dynamic-only metric; pass
    #: ``LeakageModel.cnfet()`` / ``.cmos()`` to add per-cycle static
    #: energy tracked against the cache's live stored-bit population.
    leakage: LeakageModel | None = None

    # misc
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ConfigError(
                f"unknown scheme {self.scheme!r}; known: {SCHEMES}"
            )
        if self.size < 1 or self.assoc < 1 or self.line_size < 1:
            raise ConfigError("size/assoc/line_size must be positive")
        if self.size % (self.assoc * self.line_size) != 0:
            raise ConfigError(
                f"size {self.size} not divisible by assoc*line_size"
            )
        if self.window < 2:
            raise ConfigError(f"window must be >= 2, got {self.window}")
        if self.partitions < 1:
            raise ConfigError(
                f"partitions must be >= 1, got {self.partitions}"
            )
        if self.line_size % self.partitions != 0:
            raise ConfigError(
                f"{self.partitions} partitions do not divide a "
                f"{self.line_size}-byte line"
            )
        if not 0.0 <= self.delta_t < 1.0:
            raise ConfigError(f"delta_t must be in [0, 1), got {self.delta_t}")
        if self.fifo_depth < 1:
            raise ConfigError(f"fifo_depth must be >= 1, got {self.fifo_depth}")
        if self.drain_per_access < 0:
            raise ConfigError(
                f"drain_per_access must be >= 0, got {self.drain_per_access}"
            )
        if self.encoder_logic_fj < 0 or self.predictor_logic_fj < 0:
            raise ConfigError("logic energies must be non-negative")
        if self.access_granularity not in ("line", "word"):
            raise ConfigError(
                "access_granularity must be 'line' or 'word', got "
                f"{self.access_granularity!r}"
            )
        if self.peripheral_fj_per_access < 0:
            raise ConfigError("peripheral_fj_per_access must be non-negative")
        if self.fill_policy not in ("neutral", "read-greedy", "write-greedy"):
            raise ConfigError(
                "fill_policy must be 'neutral', 'read-greedy' or "
                f"'write-greedy', got {self.fill_policy!r}"
            )
        if self.write_policy not in ("wb-wa", "wt-wa", "wt-nwa", "wb-nwa"):
            raise ConfigError(
                f"unknown write_policy {self.write_policy!r}; known: "
                "wb-wa, wt-wa, wt-nwa, wb-nwa"
            )
        if self.dbi_word_bytes < 1 or self.line_size % self.dbi_word_bytes:
            raise ConfigError(
                f"dbi_word_bytes {self.dbi_word_bytes} must divide "
                f"line_size {self.line_size}"
            )
        if self.replacement not in replacement_policy_names():
            raise ConfigError(
                f"unknown replacement policy {self.replacement!r}; "
                f"known: {replacement_policy_names()}"
            )
        if not isinstance(self.energy, BitEnergyModel):
            raise ConfigError(
                "energy must be a BitEnergyModel, got "
                f"{type(self.energy).__name__}"
            )
        if not isinstance(self.account_metadata, bool):
            raise ConfigError(
                "account_metadata must be a bool, got "
                f"{type(self.account_metadata).__name__}"
            )
        if self.leakage is not None and not isinstance(
            self.leakage, LeakageModel
        ):
            raise ConfigError(
                "leakage must be a LeakageModel or None, got "
                f"{type(self.leakage).__name__}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigError(f"seed must be an int, got {self.seed!r}")

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def write_through(self) -> bool:
        """True when stores are mirrored straight to memory."""
        return self.write_policy.startswith("wt")

    @property
    def write_allocate(self) -> bool:
        """True when write misses install the line."""
        return self.write_policy.endswith("wa") and not self.write_policy.endswith("nwa")

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size // (self.assoc * self.line_size)

    @property
    def n_lines(self) -> int:
        """Total number of lines."""
        return self.size // self.line_size

    @property
    def line_bits(self) -> int:
        """Data bits per line."""
        return self.line_size * 8

    @property
    def uses_predictor(self) -> bool:
        """True for the adaptive schemes that run Algorithm 1."""
        return self.scheme in ("invert", "cnt", "cnt-quant", "cnt-shared")

    @property
    def shared_history(self) -> bool:
        """True when the history counters are per set, not per line."""
        return self.scheme == "cnt-shared"

    @property
    def direction_bits_per_line(self) -> int:
        """D metadata bits the scheme adds to each line."""
        if self.scheme == "baseline":
            return 0
        if self.scheme in ("static-invert", "invert"):
            return 1
        if self.scheme == "dbi":
            return self.line_size // self.dbi_word_bytes
        if self.scheme == "fill-greedy":
            return self.partitions
        return self.partitions  # cnt, cnt-quant

    @property
    def history_bits_per_line(self) -> int:
        """H metadata bits (the two window counters), adaptive schemes only.

        ``cnt-quant`` replaces the exact ``Wr_num`` counter with a 2-bit
        write-intensity counter, keeping only the ``A_num`` window counter
        at full width.  ``cnt-shared`` stores one full counter pair per
        *set*, so each line carries only the amortised share.
        """
        if not self.uses_predictor:
            return 0
        if self.scheme == "cnt-quant":
            return history_bits(self.window) // 2 + 2
        if self.scheme == "cnt-shared":
            return -(-history_bits(self.window) // self.assoc)  # ceil
        return history_bits(self.window)

    @property
    def metadata_bits_per_line(self) -> int:
        """Total H&D widening of each line."""
        return self.direction_bits_per_line + self.history_bits_per_line

    @property
    def storage_overhead(self) -> float:
        """H&D bits as a fraction of the data bits."""
        return self.metadata_bits_per_line / self.line_bits

    def variant(self, **changes: Any) -> "CNTCacheConfig":
        """A modified copy (sweep helper)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # serialization (exec-engine job fingerprints and result cache)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-ready snapshot; inverse of :meth:`from_dict`.

        Nested models serialize through their own ``to_dict``; field order
        follows the dataclass declaration, so
        ``json.dumps(config.to_dict(), sort_keys=True)`` is a stable
        canonical form suitable for content hashing.
        """
        payload: dict[str, Any] = {}
        for spec in dataclass_fields(self):
            value = getattr(self, spec.name)
            if spec.name in ("energy", "leakage"):
                payload[spec.name] = None if value is None else value.to_dict()
            else:
                payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CNTCacheConfig":
        """Rebuild (and re-validate) a config from a :meth:`to_dict` snapshot."""
        if not isinstance(payload, dict):
            raise ConfigError(
                f"config payload must be a dict, got {type(payload).__name__}"
            )
        expected = {spec.name for spec in dataclass_fields(cls)}
        unknown = set(payload) - expected
        missing = expected - set(payload)
        if unknown or missing:
            raise ConfigError(
                f"config payload key mismatch: unknown={sorted(unknown)} "
                f"missing={sorted(missing)}"
            )
        kwargs = dict(payload)
        kwargs["energy"] = BitEnergyModel.from_dict(kwargs["energy"])
        if kwargs["leakage"] is not None:
            kwargs["leakage"] = LeakageModel.from_dict(kwargs["leakage"])
        return cls(**kwargs)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"{self.scheme}: {self.size // 1024} KiB {self.assoc}-way, "
            f"{self.line_size} B lines, {self.replacement.upper()}, "
            f"W={self.window}, K={self.partitions}, dT={self.delta_t}, "
            f"H&D={self.metadata_bits_per_line} bits/line "
            f"({100 * self.storage_overhead:.1f}%)"
        )

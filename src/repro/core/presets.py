"""Named configuration presets.

Shortcuts for the configurations the experiments use repeatedly, so user
code and notebooks can say ``preset("paper")`` instead of re-typing the
geometry.  Every preset is an ordinary :class:`CNTCacheConfig`; use
``.variant(...)`` to tweak from there.
"""

from __future__ import annotations

from repro.cnfet.leakage import LeakageModel
from repro.core.config import CNTCacheConfig, ConfigError


def _paper() -> CNTCacheConfig:
    """The paper's evaluated design: 32 KiB L1 D-Cache, W=16, K=8."""
    return CNTCacheConfig()


def _paper_baseline() -> CNTCacheConfig:
    """The unencoded CNFET cache the paper compares against."""
    return CNTCacheConfig(scheme="baseline")


def _whole_line() -> CNTCacheConfig:
    """The paper's 'baseline encoding approach': whole-line inversion."""
    return CNTCacheConfig(scheme="invert")


def _low_power() -> CNTCacheConfig:
    """Aggressively cheap variant: small window, quantised counter."""
    return CNTCacheConfig(scheme="cnt-quant", window=8, partitions=8)


def _embedded() -> CNTCacheConfig:
    """A small embedded L1: 8 KiB 2-way, write-through, no-allocate."""
    return CNTCacheConfig(
        size=8 * 1024, assoc=2, write_policy="wt-nwa", window=8
    )


def _l2() -> CNTCacheConfig:
    """A 256 KiB 8-way L2 (see the F11 extension experiment)."""
    return CNTCacheConfig(
        size=256 * 1024, assoc=8, fill_policy="write-greedy"
    )


def _total_power() -> CNTCacheConfig:
    """The paper config plus CNFET static-energy accounting (A9)."""
    return CNTCacheConfig(leakage=LeakageModel.cnfet())


_PRESETS = {
    "paper": _paper,
    "paper-baseline": _paper_baseline,
    "whole-line": _whole_line,
    "low-power": _low_power,
    "embedded": _embedded,
    "l2": _l2,
    "total-power": _total_power,
}


def preset_names() -> list[str]:
    """All available preset names, sorted."""
    return sorted(_PRESETS)


def preset(name: str) -> CNTCacheConfig:
    """Build a named preset configuration."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown preset {name!r}; known: {preset_names()}"
        ) from None
    return factory()

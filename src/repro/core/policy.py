"""Encoding policies: *when* direction bits change.

The codec (:mod:`repro.encoding`) fixes what transforms are possible; a
policy decides which direction word a line uses at fill time, at demand
writes, and — for the adaptive schemes — at window boundaries through the
Algorithm 1 predictor.

The scheme zoo doubles as the paper's baseline set:

========================  ===================================================
``BaselinePolicy``        unencoded CNFET cache (identity codec)
``StaticInvertPolicy``    every line stored complemented
``FillGreedyPolicy``      greedy write-preferred directions chosen at fill
``DBIPolicy``             classic per-word data-bus inversion at write time
``AdaptivePolicy``        CNT-Cache (whole-line when K=1, partitioned K>1)
========================  ===================================================
"""

from __future__ import annotations

import abc

from repro.cnfet.energy import BitEnergyModel
from repro.core.config import CNTCacheConfig, ConfigError
from repro.encoding import (
    FullLineInvertCodec,
    IdentityCodec,
    PartitionedInvertCodec,
    WordDBICodec,
)
from repro.encoding.base import DirectionWord, LineCodec
from repro.predictor.predictor import EncodingDirectionPredictor, PredictionOutcome


class EncodingPolicy(abc.ABC):
    """Direction-choice strategy bound to one codec instance."""

    name: str = "abstract"
    #: True when lines must carry the A_num/Wr_num window counters.
    uses_history: bool = False

    def __init__(self, codec: LineCodec) -> None:
        self.codec = codec

    def initial_directions(self, logical: bytes) -> DirectionWord:
        """Direction word for a line being filled (default: uninverted)."""
        return self.codec.neutral_directions()

    def write_directions(
        self,
        logical_after: bytes,
        current: DirectionWord,
        offset: int,
        size: int,
    ) -> DirectionWord:
        """Direction word after a demand write (default: unchanged).

        ``logical_after`` is the full line content *after* the write;
        ``offset``/``size`` delimit the written slice.
        """
        return current

    def window_outcome(
        self, stored: bytes, directions: DirectionWord, wr_num: int
    ) -> PredictionOutcome | None:
        """Algorithm 1 decision at a window boundary (None = not adaptive)."""
        return None


class BaselinePolicy(EncodingPolicy):
    """The unencoded CNFET cache the paper compares against."""

    name = "baseline"

    def __init__(self, line_size: int) -> None:
        super().__init__(IdentityCodec(line_size))


class StaticInvertPolicy(EncodingPolicy):
    """Store every line complemented, unconditionally.

    A strawman baseline: helps write-heavy, '1'-rich data and hurts
    everything else — useful to show adaptivity (not inversion per se) is
    what earns the savings.
    """

    name = "static-invert"

    def __init__(self, line_size: int) -> None:
        super().__init__(FullLineInvertCodec(line_size))

    def initial_directions(self, logical: bytes) -> DirectionWord:
        return (True,)


class FillGreedyPolicy(EncodingPolicy):
    """Greedy write-preferred directions chosen once per fill, then fixed.

    One-shot optimisation: partitions are biased toward stored '0's (cheap
    writes) using only the fill data, with no adaptation afterwards.
    """

    name = "fill-greedy"

    def __init__(self, line_size: int, partitions: int) -> None:
        super().__init__(PartitionedInvertCodec(line_size, partitions))

    def initial_directions(self, logical: bytes) -> DirectionWord:
        return self.codec.greedy_directions(logical, prefer_ones=False)


class DBIPolicy(EncodingPolicy):
    """Classic data-bus inversion: per-word flags re-chosen at write time.

    Each fully rewritten word re-votes its inversion flag to minimise the
    '1' bits *written* (writes prefer stored '0's).  Partially overwritten
    words keep their flag — flipping it would force a read-modify-write of
    the untouched bytes.
    """

    name = "dbi"

    def __init__(self, line_size: int, word_bytes: int = 4) -> None:
        super().__init__(WordDBICodec(line_size, word_bytes))

    def initial_directions(self, logical: bytes) -> DirectionWord:
        return self.codec.greedy_directions(logical, prefer_ones=False)

    def write_directions(
        self,
        logical_after: bytes,
        current: DirectionWord,
        offset: int,
        size: int,
    ) -> DirectionWord:
        word = self.codec.partition_bytes
        first_full = (offset + word - 1) // word
        last_full = (offset + size) // word  # exclusive
        if first_full >= last_full:
            return current
        greedy = self.codec.greedy_directions(logical_after, prefer_ones=False)
        updated = list(current)
        for index in range(first_full, last_full):
            updated[index] = greedy[index]
        return tuple(updated)


class AdaptivePolicy(EncodingPolicy):
    """CNT-Cache proper: windowed Algorithm 1 prediction per partition.

    ``partitions = 1`` gives the paper's whole-line "baseline encoding
    approach"; larger K gives the fine-grained partitioned encoder.
    """

    name = "cnt"
    uses_history = True

    def __init__(
        self,
        line_size: int,
        partitions: int,
        window: int,
        model: BitEnergyModel,
        delta_t: float = 0.0,
        fill_policy: str = "read-greedy",
    ) -> None:
        if partitions == 1:
            codec: LineCodec = FullLineInvertCodec(line_size)
        else:
            codec = PartitionedInvertCodec(line_size, partitions)
        super().__init__(codec)
        self.predictor = EncodingDirectionPredictor(
            codec, window, model, delta_t=delta_t
        )
        self.window = window
        if fill_policy not in ("neutral", "read-greedy", "write-greedy"):
            raise ConfigError(f"unknown fill_policy {fill_policy!r}")
        self.fill_policy = fill_policy

    def initial_directions(self, logical: bytes) -> DirectionWord:
        if self.fill_policy == "neutral":
            return self.codec.neutral_directions()
        prefer_ones = self.fill_policy == "read-greedy"
        return self.codec.greedy_directions(logical, prefer_ones=prefer_ones)

    def effective_wr_num(self, wr_num: int) -> int:
        """The write count actually presented to the threshold table.

        The exact policy is the identity; counter-cheapened variants
        override this.  Backends that precompute per-``Wr_num`` switch
        rows (see :mod:`repro.backends.array`) index the table through
        this mapping so quantisation stays in one place.
        """
        return wr_num

    def window_outcome(
        self, stored: bytes, directions: DirectionWord, wr_num: int
    ) -> PredictionOutcome | None:
        return self.predictor.predict(stored, directions, wr_num)


class QuantizedAdaptivePolicy(AdaptivePolicy):
    """CNT-Cache with a 2-bit write-intensity counter (extension study).

    The exact per-line ``Wr_num`` counter of Algorithm 1 costs
    ``ceil(log2 W)`` bits; real designs would prefer a small saturating
    counter.  This policy models that information loss: the window's write
    count is quantised to four levels before it indexes the threshold
    table, exactly as if only a 2-bit counter had observed the window.
    """

    name = "cnt-quant"

    def _quantize(self, wr_num: int) -> int:
        """Map an exact write count to its 2-bit bucket's representative."""
        window = self.window
        bucket = min(4 * wr_num // window, 3)
        # Bucket midpoints: W/8, 3W/8, 5W/8, 7W/8 (rounded).
        return min(round((2 * bucket + 1) * window / 8), window)

    def effective_wr_num(self, wr_num: int) -> int:
        return self._quantize(wr_num)

    def window_outcome(self, stored, directions, wr_num):
        return super().window_outcome(
            stored, directions, self._quantize(wr_num)
        )


def make_policy(config: CNTCacheConfig) -> EncodingPolicy:
    """Build the policy selected by ``config.scheme``."""
    scheme = config.scheme
    if scheme == "baseline":
        return BaselinePolicy(config.line_size)
    if scheme == "static-invert":
        return StaticInvertPolicy(config.line_size)
    if scheme == "fill-greedy":
        return FillGreedyPolicy(config.line_size, config.partitions)
    if scheme == "dbi":
        return DBIPolicy(config.line_size, config.dbi_word_bytes)
    if scheme == "invert":
        return AdaptivePolicy(
            config.line_size,
            partitions=1,
            window=config.window,
            model=config.energy,
            delta_t=config.delta_t,
            fill_policy=config.fill_policy,
        )
    if scheme == "cnt":
        return AdaptivePolicy(
            config.line_size,
            partitions=config.partitions,
            window=config.window,
            model=config.energy,
            delta_t=config.delta_t,
            fill_policy=config.fill_policy,
        )
    if scheme == "cnt-quant":
        return QuantizedAdaptivePolicy(
            config.line_size,
            partitions=config.partitions,
            window=config.window,
            model=config.energy,
            delta_t=config.delta_t,
            fill_policy=config.fill_policy,
        )
    if scheme == "cnt-shared":
        # Same algorithm as cnt; the per-set history plumbing lives in
        # the engine (CNTCache), keyed off config.shared_history.
        return AdaptivePolicy(
            config.line_size,
            partitions=config.partitions,
            window=config.window,
            model=config.energy,
            delta_t=config.delta_t,
            fill_policy=config.fill_policy,
        )
    raise ConfigError(f"unknown scheme {scheme!r}")

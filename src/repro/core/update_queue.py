"""The deferred-update data/index FIFOs of Fig. 1.

When the predictor decides to switch a line's encoding direction, the
re-encoded data is not written immediately — that would steal a cycle from
the demand write path.  Instead the paper enqueues the update into a data
FIFO (the re-encoded line) paired with an index FIFO (which line to update)
and drains them "when there is an idle time slot".

In this trace-driven model an idle slot is provisioned after every demand
access (``drain_per_access`` entries per access, default 1).  If the FIFO is
full when a new update arrives, the oldest entry is drained immediately —
modelling a stall — and counted in ``forced_drains``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.encoding.base import DirectionWord


class QueueError(ValueError):
    """Raised on invalid queue construction."""


@dataclass(frozen=True)
class PendingUpdate:
    """One queued re-encode: which line, and its new direction word.

    The *index FIFO* entry is ``(set_index, way, tag)``; the *data FIFO*
    entry is represented by ``new_directions`` — the stored bytes are
    re-derived at drain time from the line's (logical) contents, which also
    makes a demand write racing the queued update harmless.
    """

    set_index: int
    way: int
    tag: int
    new_directions: DirectionWord


class UpdateQueue:
    """Bounded FIFO of pending re-encodes."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise QueueError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self._entries: deque[PendingUpdate] = deque()
        self.enqueued = 0
        self.forced = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when another push would force a drain."""
        return len(self._entries) >= self.depth

    def push(self, update: PendingUpdate) -> PendingUpdate | None:
        """Enqueue; returns a forced-out entry if the FIFO was full."""
        forced_out = None
        if self.full:
            forced_out = self._entries.popleft()
            self.forced += 1
        self._entries.append(update)
        self.enqueued += 1
        return forced_out

    def pop(self) -> PendingUpdate | None:
        """Dequeue the oldest pending update, if any."""
        if self._entries:
            return self._entries.popleft()
        return None

    def discard_line(self, set_index: int, way: int) -> int:
        """Drop pending updates for a line (it was evicted); returns count."""
        before = len(self._entries)
        self._entries = deque(
            entry
            for entry in self._entries
            if not (entry.set_index == set_index and entry.way == way)
        )
        return before - len(self._entries)

    def drain_all(self) -> list[PendingUpdate]:
        """Empty the queue (end of simulation)."""
        out = list(self._entries)
        self._entries.clear()
        return out

"""The CNT-Cache simulator: cache + codec + predictor + FIFOs + energy.

This class realises the architecture of Fig. 1 on top of the substrate
cache.  The substrate stores *logical* bytes; each line's sidecar carries
the scheme state (direction word + window history), and every array event
is metered through the CNFET per-bit energy model in the *encoded* domain —
so the reported femtojoules depend on exactly the bits the array would
physically toggle, including the H&D metadata columns.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Iterable
from contextlib import contextmanager
from dataclasses import dataclass

from repro.cache.cache import ArrayEvent, EventKind, SetAssociativeCache
from repro.cache.line import CacheLine
from repro.cache.memory import MainMemory
from repro.cnfet.energy import BitEnergyModel
from repro.core.config import CNTCacheConfig
from repro.core.policy import EncodingPolicy, make_policy
from repro.core.stats import ENERGY_COMPONENTS, EnergyStats
from repro.core.update_queue import PendingUpdate, UpdateQueue
from repro.encoding import bits
from repro.encoding.base import DirectionWord
from repro.obs import trace
from repro.predictor.history import LineHistory
from repro.trace.record import Access


class SimulationError(RuntimeError):
    """Raised when the simulator reaches an inconsistent state."""


# Depth of facade-sanctioned construction scopes (see facade_construction).
_FACADE_DEPTH = 0


@contextmanager
def facade_construction():
    """Mark CNTCache constructions in this scope as facade-sanctioned.

    :func:`repro.backends.make_backend` (the engine behind
    ``repro.api.make_cache``) wraps its scalar construction in this
    context; a ``CNTCache(...)`` built outside it raises a
    DeprecationWarning, steering callers to the one construction surface
    where backend selection lives.
    """
    global _FACADE_DEPTH
    _FACADE_DEPTH += 1
    try:
        yield
    finally:
        _FACADE_DEPTH -= 1


@dataclass
class LineState:
    """Per-line sidecar: the 'H&D' extension of the cache line."""

    directions: DirectionWord
    history: LineHistory | None


@dataclass(frozen=True)
class WindowEvent:
    """One completed prediction window, as observed by analysis hooks.

    Emitted (when :attr:`CNTCache.window_observer` is set) right after
    Algorithm 1 ran on a line whose window just completed.  ``ones`` holds
    the per-partition '1' populations of the *stored* data the bit counter
    saw; ``flips`` is the predictor's decision.
    """

    index: int  # running event number
    set_index: int
    way: int
    tag: int
    wr_num: int
    window: int
    ones: tuple[int, ...]
    directions_before: DirectionWord
    flips: tuple[bool, ...]


class CNTCache:
    """A simulated CNFET L1 D-Cache under one encoding scheme.

    Parameters
    ----------
    config:
        Geometry + scheme + energy model.
    memory:
        Optional shared backing store (one is created if omitted).

    Use :meth:`access` per trace record, or :meth:`run` for a whole trace;
    read the results from :attr:`stats`.
    """

    def __init__(
        self, config: CNTCacheConfig, memory: MainMemory | None = None
    ) -> None:
        if _FACADE_DEPTH == 0:
            warnings.warn(
                "direct CNTCache(...) construction is deprecated; build "
                "simulators through repro.api.make_cache(config=..., "
                "backend=...) so backend selection stays in one place",
                DeprecationWarning,
                stacklevel=2,
            )
        self.config = config
        self.memory = memory if memory is not None else MainMemory()
        self.policy: EncodingPolicy = make_policy(config)
        self.codec = self.policy.codec
        self.cache = SetAssociativeCache(
            size=config.size,
            assoc=config.assoc,
            line_size=config.line_size,
            memory=self.memory,
            replacement=config.replacement,
            seed=config.seed,
            write_through=config.write_through,
            write_allocate=config.write_allocate,
        )
        self.queue = UpdateQueue(config.fifo_depth)
        self.stats = EnergyStats()
        self.model: BitEnergyModel = config.energy
        # Physical width of each history counter (energy accounting); for
        # cnt-shared the *storage* per line is amortised (see config) but
        # the counters themselves keep full width.
        if config.uses_predictor:
            from repro.predictor.history import history_bits

            self._history_bits_each = history_bits(config.window) // 2
        else:
            self._history_bits_each = 0
        # Per-set history counters for the cnt-shared extension.
        self._shared_histories = (
            [LineHistory(config.window) for _ in range(config.n_sets)]
            if config.shared_history
            else None
        )
        #: Optional analysis hook: called with a WindowEvent whenever a
        #: line's prediction window completes (see repro.analysis).
        self.window_observer: Callable[[WindowEvent], None] | None = None
        self._window_events = 0
        # Leakage accounting (extension A9): live stored-one population of
        # the whole data array, updated incrementally; invalid lines count
        # as all-zero cells.
        self._track_content = config.leakage is not None
        self._stored_ones = 0
        self._total_bits = config.size * 8
        # Telescoping trace attribution: stat totals at the last emitted
        # trace event.  Starting from zeros guarantees the per-event
        # energy deltas sum to stats.total_fj at any sampling stride
        # (see repro.obs.trace).
        self._trace_mark: dict[str, float] = dict.fromkeys(
            ("direction_switches", "partition_flips", "windows_completed")
            + ENERGY_COMPONENTS,
            0.0,
        )

    # ------------------------------------------------------------------ #
    # demand path
    # ------------------------------------------------------------------ #
    def access(self, access: Access) -> bytes:
        """Apply one valued access; returns the logical data read/written."""
        chunks: list[bytes] = []
        consumed = 0
        for part_addr, part_size in self._split(access.addr, access.size):
            payload = access.data[consumed : consumed + part_size]
            chunks.append(self._access_one(access.is_write, part_addr, payload))
            consumed += part_size
        return b"".join(chunks)

    def run(
        self, trace: Iterable[Access], finalize: bool = True
    ) -> EnergyStats:
        """Replay a whole trace; optionally drain pending updates at the end."""
        for access in trace:
            self.access(access)
        if finalize:
            self.finalize()
        return self.stats

    def finalize(self) -> None:
        """Drain every pending re-encode, charging its write energy."""
        for update in self.queue.drain_all():
            self._apply_update(update)
        if trace.ACTIVE:
            # The residual event: energy accumulated since the last
            # sampled access (skipped accesses + the drain above), so
            # per-event energies telescope to stats.total_fj exactly.
            trace.emit(
                "finalize",
                index=self.stats.accesses,
                scheme=self.config.scheme,
                pending_dropped=self.stats.pending_dropped,
                **self._trace_deltas(),
            )

    def preload(self, addr: int, payload: bytes) -> None:
        """Install initial memory contents (program image) before a run.

        Fills triggered during the run then fetch true line contents
        instead of zero-filled pages.  Must be called before :meth:`run`.
        """
        self.memory.poke(addr, payload)

    def preload_all(self, preloads: Iterable[tuple[int, bytes]]) -> None:
        """Install a whole initial memory image (see :meth:`preload`)."""
        for addr, payload in preloads:
            self.memory.poke(addr, payload)

    # ------------------------------------------------------------------ #
    # inspection helpers (tests, verification, reports)
    # ------------------------------------------------------------------ #
    def logical_line(self, set_index: int, way: int) -> bytes:
        """Program-visible contents of a resident line."""
        return bytes(self.cache.line_at(set_index, way).data)

    def stored_line(self, set_index: int, way: int) -> bytes:
        """Array contents of a resident line (encoded domain)."""
        line = self.cache.line_at(set_index, way)
        state = self._state(line)
        return self.codec.encode(bytes(line.data), state.directions)

    def directions_of(self, set_index: int, way: int) -> DirectionWord:
        """Current direction word of a resident line."""
        return self._state(self.cache.line_at(set_index, way)).directions

    @property
    def pending_updates(self) -> int:
        """Re-encodes currently waiting in the FIFOs."""
        return len(self.queue)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _split(self, addr: int, size: int) -> list[tuple[int, int]]:
        ranges: list[tuple[int, int]] = []
        line_size = self.config.line_size
        position, remaining = addr, size
        while remaining > 0:
            line_end = (position // line_size + 1) * line_size
            chunk = min(remaining, line_end - position)
            ranges.append((position, chunk))
            position += chunk
            remaining -= chunk
        return ranges

    def _access_one(self, is_write: bool, addr: int, payload: bytes) -> bytes:
        result = self.cache.access(
            is_write, addr, len(payload), payload if payload else None
        )
        self.stats.accesses += 1
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        if result.hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        if result.victim is not None:
            self.stats.evictions += 1
            if result.victim.dirty:
                self.stats.writebacks += 1
            if self._track_content:
                victim_state = result.victim.sidecar
                directions = (
                    victim_state.directions
                    if isinstance(victim_state, LineState)
                    else self.codec.neutral_directions()
                )
                self._stored_ones -= bits.popcount(
                    self.codec.encode(result.victim.data, directions)
                )

        for event in result.events:
            self._process_event(event)

        # Value-independent peripheral energy of the demand activation.
        self.stats.add("peripheral_fj", self.config.peripheral_fj_per_access)

        # Per-access encoder datapath energy (absent in the plain baseline).
        if self.config.scheme != "baseline":
            self.stats.add("logic_fj", self.config.encoder_logic_fj)

        # Window bookkeeping for adaptive schemes.  Bypassed writes
        # (no-write-allocate misses, way < 0) never touched the array.
        if result.way >= 0:
            line = self.cache.line_at(result.set_index, result.way)
            state = self._state(line)
            history = self._history_for(result.set_index, state)
            if history is not None:
                self._record_history(
                    line, state, is_write, result.set_index, result.way,
                    history,
                )

        # Idle-slot drains of the deferred-update FIFOs.
        self._drain(self.config.drain_per_access)

        # Static energy of this cycle (extension A9).
        if self.config.leakage is not None:
            self.stats.add(
                "leakage_fj",
                self.config.leakage.cycle_energy(
                    self._stored_ones, self._total_bits - self._stored_ones
                ),
            )

        if trace.ACTIVE:
            self._trace_access(result, is_write)

        return result.data

    def _trace_deltas(self) -> dict:
        """Energy/decision deltas since the last emitted trace event.

        Advances the telescoping mark, so consecutive emitted events
        partition the run's totals exactly (floating-point subtraction
        of nearby running sums is exact here to well below the 1e-6 fJ
        acceptance bound).
        """
        mark = self._trace_mark
        stats = self.stats
        energy: dict[str, float] = {}
        for name in ENERGY_COMPONENTS:
            value = getattr(stats, name)
            delta = value - mark[name]
            if delta:
                energy[name] = delta
            mark[name] = value
        decisions: dict[str, int] = {}
        for name in (
            "direction_switches", "partition_flips", "windows_completed"
        ):
            value = getattr(stats, name)
            delta = int(value - mark[name])
            if delta:
                decisions[name] = delta
            mark[name] = value
        return {"energy": energy, **decisions}

    def _trace_access(self, result, is_write: bool) -> None:
        """Emit one sampled demand-access trace event (index-based)."""
        index = self.stats.accesses - 1
        if index % trace.EVERY:
            return
        fields = self._trace_deltas()
        directions = None
        if result.way >= 0:
            line = self.cache.line_at(result.set_index, result.way)
            state = line.sidecar
            if isinstance(state, LineState):
                value = 0
                for position, flag in enumerate(state.directions):
                    value |= int(flag) << position
                directions = value
        trace.emit(
            "access",
            index=index,
            set=result.set_index,
            way=result.way,
            hit=result.hit,
            write=is_write,
            scheme=self.config.scheme,
            directions=directions,
            every=trace.EVERY,
            **fields,
        )

    def _process_event(self, event: ArrayEvent) -> None:
        kind = event.kind
        if kind is EventKind.FILL:
            self._on_fill(event)
        elif kind is EventKind.WRITEBACK:
            self._on_writeback(event)
        elif kind is EventKind.DATA_READ:
            self._on_data_read(event)
        elif kind is EventKind.DATA_WRITE:
            self._on_data_write(event)
        else:  # pragma: no cover - exhaustive over EventKind
            raise SimulationError(f"unhandled event kind {kind}")

    def _on_fill(self, event: ArrayEvent) -> None:
        line = event.line
        assert line is not None
        # Any pending update for the way this line replaced is now stale.
        self.stats.pending_dropped += self.queue.discard_line(
            event.set_index, event.way
        )
        directions = self.policy.initial_directions(event.payload)
        history = (
            LineHistory(self.config.window)
            if self.policy.uses_history and not self.config.shared_history
            else None
        )
        line.sidecar = LineState(directions=directions, history=history)
        stored = self.codec.encode(event.payload, directions)
        ones = bits.popcount(stored)
        self.stats.add(
            "fill_fj", self.model.write_energy(ones, len(stored) * 8 - ones)
        )
        if self._track_content:
            self._stored_ones += ones
        self.stats.add("peripheral_fj", self.config.peripheral_fj_per_access)
        self._charge_metadata_write(line.sidecar, full=True)

    def _on_writeback(self, event: ArrayEvent) -> None:
        state = event.sidecar
        directions = (
            state.directions
            if isinstance(state, LineState)
            else self.codec.neutral_directions()
        )
        stored = self.codec.encode(event.payload, directions)
        ones = bits.popcount(stored)
        self.stats.add(
            "writeback_fj",
            self.model.read_energy(ones, len(stored) * 8 - ones),
        )
        self.stats.add("peripheral_fj", self.config.peripheral_fj_per_access)
        if isinstance(state, LineState):
            self._charge_metadata_read(
                state, self._history_for(event.set_index, state)
            )

    def _on_data_read(self, event: ArrayEvent) -> None:
        line = event.line
        assert line is not None
        state = self._state(line)
        if self.config.access_granularity == "line":
            # Full-row activation: every column of the line swings its
            # bitline — the granularity the paper's Eq. 4/5 charge.
            stored = self.codec.encode(bytes(line.data), state.directions)
        else:
            stored = bits.encoded_slice(
                bytes(line.data), state.directions, event.offset, event.size
            )
        ones = bits.popcount(stored)
        self.stats.add(
            "data_read_fj",
            self.model.read_energy(ones, len(stored) * 8 - ones),
        )
        self._charge_metadata_read(
            state, self._history_for(event.set_index, state)
        )

    def _on_data_write(self, event: ArrayEvent) -> None:
        line = event.line
        assert line is not None
        state = self._state(line)
        logical_after = bytes(line.data)
        old_directions = state.directions
        new_directions = self.policy.write_directions(
            logical_after, state.directions, event.offset, event.size
        )
        directions_changed = new_directions != state.directions
        if directions_changed:
            state.directions = new_directions
        if self._track_content:
            assert event.payload_before is not None
            logical_before = (
                logical_after[: event.offset]
                + event.payload_before
                + logical_after[event.offset + event.size :]
            )
            self._stored_ones += bits.popcount(
                self.codec.encode(logical_after, new_directions)
            ) - bits.popcount(
                self.codec.encode(logical_before, old_directions)
            )
        if self.config.access_granularity == "line":
            # Full-row write: the whole updated line is driven back into
            # the row (Eq. 4/5's write term covers all L bits).
            stored = self.codec.encode(logical_after, state.directions)
        else:
            stored = bits.encoded_slice(
                logical_after, state.directions, event.offset, event.size
            )
        ones = bits.popcount(stored)
        self.stats.add(
            "data_write_fj",
            self.model.write_energy(ones, len(stored) * 8 - ones),
        )
        self._charge_metadata_read(
            state, self._history_for(event.set_index, state)
        )
        if directions_changed:
            self._charge_metadata_write(state, full=False)

    # ------------------------------------------------------------------ #
    # history window + prediction
    # ------------------------------------------------------------------ #
    def _history_for(
        self, set_index: int, state: LineState
    ) -> LineHistory | None:
        """The history counters governing a line (per line or per set)."""
        if self._shared_histories is not None:
            return self._shared_histories[set_index]
        return state.history

    def _record_history(
        self,
        line: CacheLine,
        state: LineState,
        is_write: bool,
        set_index: int,
        way: int,
        history: LineHistory,
    ) -> None:
        window_done = history.record(is_write)
        # The incremented counters are written back to the H bits.
        self._charge_history_write(history)
        if not window_done:
            return
        self.stats.windows_completed += 1
        self.stats.add("logic_fj", self.config.predictor_logic_fj)
        stored = self.codec.encode(bytes(line.data), state.directions)
        outcome = self.policy.window_outcome(
            stored, state.directions, history.wr_num
        )
        if self.window_observer is not None and outcome is not None:
            self.window_observer(
                WindowEvent(
                    index=self._window_events,
                    set_index=set_index,
                    way=way,
                    tag=line.tag,
                    wr_num=history.wr_num,
                    window=self.config.window,
                    ones=tuple(self.codec.ones_per_partition(stored)),
                    directions_before=state.directions,
                    flips=outcome.flips,
                )
            )
            self._window_events += 1
        history.reset()
        self._charge_history_write(history)
        if outcome is None or not outcome.any_flip:
            return
        self.stats.direction_switches += 1
        self.stats.partition_flips += sum(outcome.flips)
        forced = self.queue.push(
            PendingUpdate(
                set_index=set_index,
                way=way,
                tag=line.tag,
                new_directions=outcome.new_directions,
            )
        )
        if forced is not None:
            self.stats.forced_drains += 1
            self._apply_update(forced)

    # ------------------------------------------------------------------ #
    # deferred updates
    # ------------------------------------------------------------------ #
    def _drain(self, budget: int) -> None:
        applied = 0
        while applied < budget:
            update = self.queue.pop()
            if update is None:
                return
            if self._apply_update(update):
                applied += 1

    def _apply_update(self, update: PendingUpdate) -> bool:
        """Re-encode a line per a queued update; False if it went stale."""
        line = self.cache.line_at(update.set_index, update.way)
        if not line.valid or line.tag != update.tag:
            self.stats.pending_dropped += 1
            return False
        state = self._state(line)
        flips = tuple(
            old != new
            for old, new in zip(state.directions, update.new_directions)
        )
        if not any(flips):
            return True  # nothing to rewrite, but the slot was used
        logical = bytes(line.data)
        width = self.codec.partition_bytes
        energy = 0.0
        for index, flipped in enumerate(flips):
            if not flipped:
                continue
            stored = bits.encoded_slice(
                logical,
                update.new_directions,
                index * width,
                width,
            )
            ones = bits.popcount(stored)
            energy += self.model.write_energy(ones, width * 8 - ones)
            if self._track_content:
                # The partition inverted: new ones replace old ones.
                self._stored_ones += 2 * ones - width * 8
        state.directions = update.new_directions
        self.stats.add("reencode_fj", energy)
        self.stats.add("peripheral_fj", self.config.peripheral_fj_per_access)
        self._charge_metadata_write(state, full=False)
        return True

    # ------------------------------------------------------------------ #
    # metadata energy
    # ------------------------------------------------------------------ #
    def _metadata_words(
        self, state: LineState, history: LineHistory | None
    ) -> tuple[int, int]:
        """(ones, total_bits) of the metadata columns an access touches."""
        value = 0
        width = len(state.directions) if state.directions else 0
        total = self.config.direction_bits_per_line
        for position, flag in enumerate(state.directions):
            value |= int(flag) << position
        if history is not None:
            counter_bits = self._history_bits_each
            mask = (1 << counter_bits) - 1
            value |= (history.a_num & mask) << width
            width += counter_bits
            value |= (history.wr_num & mask) << width
            total += 2 * counter_bits
        return value.bit_count(), total

    def _charge_metadata_read(
        self, state: LineState, history: LineHistory | None
    ) -> None:
        if not self.config.account_metadata:
            return
        ones, total = self._metadata_words(state, history)
        if total == 0:
            return
        self.stats.add(
            "metadata_read_fj", self.model.read_energy(ones, total - ones)
        )

    def _charge_metadata_write(self, state: LineState, full: bool) -> None:
        """Charge writing the D bits (and H bits when ``full``)."""
        if not self.config.account_metadata:
            return
        direction_bits = self.config.direction_bits_per_line
        if direction_bits == 0 and not full:
            return
        value = 0
        for position, flag in enumerate(state.directions):
            value |= int(flag) << position
        ones = value.bit_count()
        total = direction_bits
        if full and state.history is not None:
            counter_bits = self._history_bits_each
            mask = (1 << counter_bits) - 1
            history_value = (state.history.a_num & mask) | (
                (state.history.wr_num & mask) << counter_bits
            )
            ones += history_value.bit_count()
            total += 2 * counter_bits
        if total == 0:
            return
        self.stats.add(
            "metadata_write_fj", self.model.write_energy(ones, total - ones)
        )

    def _charge_history_write(self, history: LineHistory) -> None:
        if not self.config.account_metadata:
            return
        counter_bits = self._history_bits_each
        if counter_bits == 0:
            return
        mask = (1 << counter_bits) - 1
        value = (history.a_num & mask) | ((history.wr_num & mask) << counter_bits)
        ones = value.bit_count()
        self.stats.add(
            "metadata_write_fj",
            self.model.write_energy(ones, 2 * counter_bits - ones),
        )

    @staticmethod
    def _state(line: CacheLine) -> LineState:
        state = line.sidecar
        if not isinstance(state, LineState):
            raise SimulationError(
                "cache line has no CNT sidecar - was it filled outside CNTCache?"
            )
        return state

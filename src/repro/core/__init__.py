"""CNT-Cache core: the paper's primary contribution.

Glues the substrates together into the architecture of Fig. 1:

* a data-carrying set-associative cache (:mod:`repro.cache`),
* a line codec (:mod:`repro.encoding`) — the inverter/mux datapath,
* the encoding-direction predictor (:mod:`repro.predictor`) — Algorithm 1,
* the deferred-update data/index FIFOs, and
* per-bit energy accounting over the CNFET SRAM model
  (:mod:`repro.cnfet`), including the H&D metadata overhead.

Public entry points:

* :class:`~repro.core.config.CNTCacheConfig` — one config object selecting
  the scheme (``baseline``/``invert``/``dbi``/``static-invert``/``cnt``/...).
* :class:`~repro.core.cntcache.CNTCache` — the simulator.
* :class:`~repro.core.stats.EnergyStats` — the measured energy breakdown.
"""

from repro.core.config import CNTCacheConfig, SCHEMES
from repro.core.cntcache import CNTCache
from repro.core.presets import preset, preset_names
from repro.core.policy import (
    AdaptivePolicy,
    BaselinePolicy,
    DBIPolicy,
    EncodingPolicy,
    FillGreedyPolicy,
    QuantizedAdaptivePolicy,
    StaticInvertPolicy,
    make_policy,
)
from repro.core.stats import EnergyStats
from repro.core.update_queue import PendingUpdate, UpdateQueue

__all__ = [
    "CNTCache",
    "CNTCacheConfig",
    "SCHEMES",
    "EnergyStats",
    "EncodingPolicy",
    "BaselinePolicy",
    "StaticInvertPolicy",
    "FillGreedyPolicy",
    "DBIPolicy",
    "AdaptivePolicy",
    "QuantizedAdaptivePolicy",
    "make_policy",
    "UpdateQueue",
    "PendingUpdate",
    "preset",
    "preset_names",
]

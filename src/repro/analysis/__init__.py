"""Post-hoc analysis tools for CNT-Cache runs.

Three complementary views of *why* a run saved (or lost) energy:

* :mod:`~repro.analysis.profile` — per-line energy/switch profiling:
  which lines are hot, which lines thrash.
* :mod:`~repro.analysis.density` — bit-population structure of a trace:
  per-region and per-phase ones-density, the raw encoding opportunity.
* :mod:`~repro.analysis.accuracy` — hindsight quality of Algorithm 1's
  decisions: how often the window-based prediction matched what the *next*
  window actually wanted.
"""

from repro.analysis.accuracy import PredictionAudit, audit_predictions
from repro.analysis.density import DensityProfile, density_profile
from repro.analysis.profile import LineProfile, LineProfiler

__all__ = [
    "LineProfiler",
    "LineProfile",
    "density_profile",
    "DensityProfile",
    "audit_predictions",
    "PredictionAudit",
]

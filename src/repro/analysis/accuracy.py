"""Hindsight audit of Algorithm 1's decisions.

The predictor assumes the *next* window will look like the one just
observed.  This audit replays a trace with a window observer attached,
pairs up consecutive window events of each line, and scores every decision
against what the following window actually wanted:

* a *kept* encoding is correct if, knowing the next window's write mix,
  switching would still not have paid;
* a *switch* is correct if the next window's mix still favours it.

The per-partition score uses exactly the paper's own economics
(:func:`~repro.predictor.threshold.should_switch_exact`), so "correct"
means "the decision the predictor would have made with perfect
one-window lookahead".
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.cntcache import CNTCache, WindowEvent
from repro.predictor.threshold import should_switch_exact
from repro.trace.record import Access


@dataclass
class PredictionAudit:
    """Outcome of a hindsight audit."""

    decisions: int = 0
    correct: int = 0
    kept_correct: int = 0
    kept_wrong: int = 0
    switched_correct: int = 0
    switched_wrong: int = 0
    _pending: dict = field(default_factory=dict, repr=False)

    @property
    def accuracy(self) -> float:
        """Fraction of per-partition decisions that hindsight confirms."""
        return self.correct / self.decisions if self.decisions else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Flat view for tables."""
        return {
            "decisions": self.decisions,
            "accuracy": self.accuracy,
            "kept_correct": self.kept_correct,
            "kept_wrong": self.kept_wrong,
            "switched_correct": self.switched_correct,
            "switched_wrong": self.switched_wrong,
        }


def audit_predictions(
    sim: CNTCache,
    trace: Iterable[Access],
    preloads: Iterable[tuple[int, bytes]] = (),
) -> PredictionAudit:
    """Replay ``trace`` through ``sim`` and audit every window decision.

    ``sim`` must use an adaptive scheme (``invert`` or ``cnt``); the audit
    installs itself as the simulator's window observer.
    """
    if not sim.config.uses_predictor:
        raise ValueError(
            f"scheme {sim.config.scheme!r} runs no predictor to audit"
        )
    audit = PredictionAudit()
    model = sim.model
    partition_bits = sim.codec.partition_bits

    def on_window(event: WindowEvent) -> None:
        key = (event.set_index, event.way, event.tag)
        previous = audit._pending.get(key)
        if previous is not None:
            # Score the PREVIOUS decision against THIS window's mix.
            for flip, ones in zip(previous.flips, event.ones):
                # Would perfect lookahead have switched at the previous
                # boundary?  Evaluate with this window's wr_num and the
                # stored population as it stood after the decision.
                hindsight = should_switch_exact(
                    partition_bits,
                    event.window,
                    event.wr_num,
                    ones,
                    model,
                )
                audit.decisions += 1
                # ``hindsight`` True means the CURRENT encoding (i.e. the
                # result of the previous decision) is wrong for this
                # window.  So the previous decision was correct iff the
                # encoding it produced needs no further switch.
                if not hindsight:
                    audit.correct += 1
                    if flip:
                        audit.switched_correct += 1
                    else:
                        audit.kept_correct += 1
                elif flip:
                    audit.switched_wrong += 1
                else:
                    audit.kept_wrong += 1
        audit._pending[key] = event

    sim.window_observer = on_window
    sim.preload_all(preloads)
    sim.run(trace)
    audit._pending.clear()
    return audit

"""Per-line profiling of a CNT-Cache run.

Attaches to a :class:`~repro.core.cntcache.CNTCache` as its window
observer (and piggybacks on the trace replay) to attribute window
completions, direction switches and accesses to individual line addresses,
then reports the hottest and the thrashiest lines.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.cntcache import CNTCache, WindowEvent
from repro.trace.record import Access


@dataclass
class LineProfile:
    """Aggregate behaviour of one cache-line address."""

    line_addr: int
    accesses: int = 0
    writes: int = 0
    windows: int = 0
    switches: int = 0
    partition_flips: int = 0

    @property
    def write_ratio(self) -> float:
        """Fraction of this line's accesses that were writes."""
        if self.accesses == 0:
            return 0.0
        return self.writes / self.accesses

    @property
    def switch_rate(self) -> float:
        """Direction switches per completed window (thrash indicator)."""
        if self.windows == 0:
            return 0.0
        return self.switches / self.windows


@dataclass
class LineProfiler:
    """Replays a trace through a cache while profiling per-line activity.

    Usage::

        from repro.api import make_cache

        profiler = LineProfiler(make_cache(config=config))
        profiler.run(run.trace, run.preloads)
        for profile in profiler.top_switchers(5):
            print(profile)
    """

    sim: CNTCache
    profiles: dict[int, LineProfile] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.sim.window_observer = self._on_window

    def _profile_for(self, line_addr: int) -> LineProfile:
        profile = self.profiles.get(line_addr)
        if profile is None:
            profile = LineProfile(line_addr)
            self.profiles[line_addr] = profile
        return profile

    def _on_window(self, event: WindowEvent) -> None:
        line_addr = self.sim.cache.mapper.rebuild(event.tag, event.set_index)
        profile = self._profile_for(line_addr)
        profile.windows += 1
        if any(event.flips):
            profile.switches += 1
            profile.partition_flips += sum(event.flips)

    def run(
        self,
        trace: Iterable[Access],
        preloads: Iterable[tuple[int, bytes]] = (),
    ) -> None:
        """Replay the trace, collecting per-line statistics."""
        line_size = self.sim.config.line_size
        self.sim.preload_all(preloads)
        for access in trace:
            first = access.addr // line_size * line_size
            last = (access.addr + access.size - 1) // line_size * line_size
            for line_addr in range(first, last + 1, line_size):
                profile = self._profile_for(line_addr)
                profile.accesses += 1
                if access.is_write:
                    profile.writes += 1
            self.sim.access(access)
        self.sim.finalize()

    # ------------------------------------------------------------------ #
    # reports
    # ------------------------------------------------------------------ #
    def top_accessed(self, n: int = 10) -> list[LineProfile]:
        """The ``n`` most-accessed line addresses."""
        return sorted(
            self.profiles.values(), key=lambda p: p.accesses, reverse=True
        )[:n]

    def top_switchers(self, n: int = 10) -> list[LineProfile]:
        """The ``n`` lines with most direction switches (thrash suspects)."""
        return sorted(
            self.profiles.values(), key=lambda p: p.switches, reverse=True
        )[:n]

    def summary(self) -> dict[str, float]:
        """Whole-run aggregates."""
        total_windows = sum(p.windows for p in self.profiles.values())
        total_switches = sum(p.switches for p in self.profiles.values())
        return {
            "lines_touched": len(self.profiles),
            "windows": total_windows,
            "switches": total_switches,
            "switch_rate": (
                total_switches / total_windows if total_windows else 0.0
            ),
            "total_fj": self.sim.stats.total_fj,
        }

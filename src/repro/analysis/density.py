"""Bit-population structure of a valued trace.

The encoding opportunity of a workload is entirely determined by how far
its data deviates from the 50% ones-density fixpoint, per region and per
phase.  ``density_profile`` computes both axes from a trace in one pass.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.encoding.bits import popcount
from repro.trace.record import Access


@dataclass
class RegionDensity:
    """Ones-density of one address region."""

    region_addr: int
    bits: int = 0
    ones: int = 0

    @property
    def density(self) -> float:
        """Fraction of one-bits observed in this region's traffic."""
        return self.ones / self.bits if self.bits else 0.0


@dataclass
class DensityProfile:
    """Per-region and per-phase ones-density of a trace."""

    region_size: int
    phase_length: int
    regions: dict[int, RegionDensity] = field(default_factory=dict)
    #: (ones, bits) per consecutive phase of ``phase_length`` accesses.
    phases: list[tuple[int, int]] = field(default_factory=list)

    @property
    def overall_density(self) -> float:
        """Whole-trace ones-density."""
        bits = sum(region.bits for region in self.regions.values())
        ones = sum(region.ones for region in self.regions.values())
        return ones / bits if bits else 0.0

    @property
    def phase_densities(self) -> list[float]:
        """Ones-density per phase, in trace order."""
        return [ones / bits if bits else 0.0 for ones, bits in self.phases]

    def encoding_opportunity(self) -> float:
        """Mean per-region distance from the 0.5 fixpoint, traffic-weighted.

        0.0 means perfectly balanced data (nothing to gain); 0.5 means
        every region is all-zeros or all-ones (maximum headroom).
        """
        total_bits = sum(region.bits for region in self.regions.values())
        if total_bits == 0:
            return 0.0
        return sum(
            abs(region.density - 0.5) * region.bits
            for region in self.regions.values()
        ) / total_bits

    def skewed_regions(self, threshold: float = 0.2) -> list[RegionDensity]:
        """Regions whose density deviates from 0.5 by at least ``threshold``."""
        return sorted(
            (
                region
                for region in self.regions.values()
                if abs(region.density - 0.5) >= threshold
            ),
            key=lambda region: region.region_addr,
        )


def density_profile(
    trace: Iterable[Access],
    region_size: int = 4096,
    phase_length: int = 1000,
) -> DensityProfile:
    """Single-pass density analysis of a valued trace."""
    if region_size < 1 or region_size & (region_size - 1):
        raise ValueError(
            f"region_size must be a positive power of two, got {region_size}"
        )
    if phase_length < 1:
        raise ValueError(f"phase_length must be >= 1, got {phase_length}")
    profile = DensityProfile(region_size=region_size, phase_length=phase_length)
    phase_ones = 0
    phase_bits = 0
    in_phase = 0
    for access in trace:
        ones = popcount(access.data)
        bits = access.size * 8
        region_addr = access.addr & ~(region_size - 1)
        region = profile.regions.get(region_addr)
        if region is None:
            region = RegionDensity(region_addr)
            profile.regions[region_addr] = region
        region.ones += ones
        region.bits += bits
        phase_ones += ones
        phase_bits += bits
        in_phase += 1
        if in_phase == phase_length:
            profile.phases.append((phase_ones, phase_bits))
            phase_ones = phase_bits = in_phase = 0
    if in_phase:
        profile.phases.append((phase_ones, phase_bits))
    return profile

"""State-dependent SRAM leakage model (extension study A9).

The paper's motivation for CNFETs is energy efficiency, which includes
their order-of-magnitude leakage advantage over CMOS.  Leakage in a 6T
cell is (mildly) *state-dependent* — the off-transistor stack seen by the
supply differs with the stored value — so an encoding scheme that biases
stored values could, in principle, interact with static power.

This model answers that question quantitatively.  Per-bit leakage powers
are converted to per-cycle energies with the access-time model's cycle
estimate, and the CNT-Cache engine (``CNTCacheConfig.leakage``) tracks the
cache-wide stored-one population incrementally so every cycle is charged
the exact state-dependent static energy.

Finding (experiment A9): at CNFET leakage levels, static energy is <0.1%
of dynamic energy over any realistic run, so the value-dependence is
irrelevant — the dynamic-only accounting of the paper is justified.  The
same machinery with CMOS-class leakage shows when that stops being true.
"""

from __future__ import annotations

from dataclasses import dataclass


class LeakageModelError(ValueError):
    """Raised on invalid leakage-model parameters."""

#: Default cycle time used to convert leakage power to per-cycle energy,
#: picoseconds (from the timing model's ~100 ps access + margin).
DEFAULT_CYCLE_PS = 145.0

#: Per-cell leakage power, nanowatts.  CNFET cells leak ~20-50x less than
#: same-node CMOS; storing a '1' leaks slightly more in this cell design
#: (the stronger pull-down NFET is the off-device under more stress).
_CNFET_LEAK0_NW = 0.040
_CNFET_LEAK1_NW = 0.052
_CMOS_LEAK0_NW = 1.30
_CMOS_LEAK1_NW = 1.55


@dataclass(frozen=True)
class LeakageModel:
    """Per-bit, per-cycle static energy, split by stored value.

    ``e_leak0`` / ``e_leak1`` are femtojoules leaked per cycle by a cell
    holding 0 / 1.
    """

    e_leak0: float
    e_leak1: float

    def __post_init__(self) -> None:
        if self.e_leak0 < 0 or self.e_leak1 < 0:
            raise LeakageModelError("leakage energies must be non-negative")

    @classmethod
    def from_power(
        cls, leak0_nw: float, leak1_nw: float, cycle_ps: float = DEFAULT_CYCLE_PS
    ) -> "LeakageModel":
        """Build from per-cell leakage power (nW) and cycle time (ps).

        nW x ps = 1e-9 W x 1e-12 s = 1e-21 J = 1e-6 fJ.
        """
        if cycle_ps <= 0:
            raise LeakageModelError(f"cycle_ps must be positive, got {cycle_ps}")
        scale = cycle_ps * 1e-6
        return cls(e_leak0=leak0_nw * scale, e_leak1=leak1_nw * scale)

    @classmethod
    def cnfet(cls, cycle_ps: float = DEFAULT_CYCLE_PS) -> "LeakageModel":
        """The CNFET cell's leakage (the technology under study)."""
        return cls.from_power(_CNFET_LEAK0_NW, _CNFET_LEAK1_NW, cycle_ps)

    @classmethod
    def cmos(cls, cycle_ps: float = DEFAULT_CYCLE_PS) -> "LeakageModel":
        """A same-node CMOS reference (~30x leakier)."""
        return cls.from_power(_CMOS_LEAK0_NW, _CMOS_LEAK1_NW, cycle_ps)

    def to_dict(self) -> dict[str, float]:
        """JSON-ready snapshot; inverse of :meth:`from_dict`."""
        return {"e_leak0": self.e_leak0, "e_leak1": self.e_leak1}

    @classmethod
    def from_dict(cls, payload: dict) -> "LeakageModel":
        """Rebuild from a :meth:`to_dict` snapshot (strict keys)."""
        expected = {"e_leak0", "e_leak1"}
        if not isinstance(payload, dict) or set(payload) != expected:
            raise LeakageModelError(
                f"leakage payload must have keys {sorted(expected)}, "
                f"got {payload!r}"
            )
        return cls(**{name: float(payload[name]) for name in expected})

    def cycle_energy(self, ones: int, zeros: int) -> float:
        """Static energy of one cycle for a given stored population, fJ."""
        if ones < 0 or zeros < 0:
            raise LeakageModelError(
                f"populations must be non-negative, got {ones}/{zeros}"
            )
        return ones * self.e_leak1 + zeros * self.e_leak0

"""Process corners, supply-voltage scaling and the CMOS reference cell.

These support the reconstructed Vdd-sweep experiment (F9 in DESIGN.md):
the paper motivates CNFETs as an *energy-efficient alternative to
power-hungry CMOS*, so the harness compares the CNFET bit-energy table
against a symmetric CMOS reference across supply voltages.
"""

from __future__ import annotations

import enum

from repro.cnfet.energy import BitEnergyModel, EnergyModelError

#: Nominal supply voltage the pinned Table I values are calibrated at.
NOMINAL_VDD = 0.9


class Corner(enum.Enum):
    """Classic three-corner process model.

    The multiplier scales dynamic energy: fast corners have lower effective
    capacitance/threshold drop (slightly less switched charge per access),
    slow corners the opposite.
    """

    TT = "typical"
    FF = "fast"
    SS = "slow"

    @property
    def energy_multiplier(self) -> float:
        """Dynamic-energy multiplier relative to the TT corner."""
        return {Corner.TT: 1.0, Corner.FF: 0.92, Corner.SS: 1.11}[self]


def scale_to_corner(model: BitEnergyModel, corner: Corner) -> BitEnergyModel:
    """Scale a TT-corner energy model to another process corner."""
    return model.scaled(corner.energy_multiplier)


def scale_to_vdd(
    model: BitEnergyModel, vdd: float, nominal_vdd: float = NOMINAL_VDD
) -> BitEnergyModel:
    """Scale dynamic energy quadratically with supply voltage (CV^2).

    Parameters
    ----------
    model:
        Energy model calibrated at ``nominal_vdd``.
    vdd:
        Target supply voltage in volts; must be positive.
    """
    if vdd <= 0:
        raise EnergyModelError(f"vdd must be positive, got {vdd}")
    if nominal_vdd <= 0:
        raise EnergyModelError(f"nominal_vdd must be positive, got {nominal_vdd}")
    return model.scaled((vdd / nominal_vdd) ** 2)


def cmos_reference_model(vdd: float = NOMINAL_VDD) -> BitEnergyModel:
    """A 32 nm-class CMOS 6T SRAM reference with *near-symmetric* energies.

    Differential CMOS 6T arrays discharge exactly one of BL/BLB per read and
    drive a full differential swing per write, so per-bit energy barely
    depends on the stored value.  We keep a 5% residual asymmetry (sense/
    driver imbalance) so the model type's invariants still hold, and pitch
    the absolute level ~2.2x above the CNFET cell — the efficiency gap the
    paper's introduction claims for CNFETs.
    """
    base = BitEnergyModel(e_rd0=8.20, e_rd1=7.80, e_wr0=7.90, e_wr1=8.30)
    return scale_to_vdd(base, vdd)


#: Convenience instance of the nominal CMOS reference.
CMOS_REFERENCE = cmos_reference_model()

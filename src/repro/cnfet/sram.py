"""Single-ended CNFET 6T SRAM cell energy model.

Why read/write energy depends on the *value* of the bit
-------------------------------------------------------

The CNT-Cache paper builds its cache from CNFET SRAM cells with a
**single-ended, precharge-high** bitline discipline (the low-power choice for
CNFET arrays, where the strong near-ballistic pull-down makes single-ended
full-swing reads fast enough):

* **Read**: the bitline is precharged to Vdd.  If the cell stores ``0`` the
  pull-down path discharges the bitline through the access transistor — a
  full bitline swing that must be paid again at the next precharge.  If the
  cell stores ``1`` the bitline simply *stays* high: only the wordline slice
  and the sense inverter toggle.  Hence ``E_rd0 >> E_rd1``.
* **Write**: writing ``1`` must charge the (discharged) bitline all the way
  to Vdd *and* overpower the cell's strong pull-down NFET, burning crowbar
  current while the cell flips.  Writing ``0`` merely sinks the bitline and
  tips the cell over with the (cheap) discharge path.  Hence
  ``E_wr1 >> E_wr0`` — the paper's abstract quotes "almost 10X".

The component formulas below reproduce exactly the two facts the paper pins
down: ``E_wr1 ~= 10 x E_wr0`` and ``E_rd0 - E_rd1 ~= E_wr1 - E_wr0`` (which
is what makes ``Th_rd ~= W/2`` in Eq. 3).

All energies are in femtojoules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cnfet.device import CNFETDevice, DeviceModelError

#: Wire capacitance contributed to the bitline by each cell pitch, fF.
_C_WIRE_PER_CELL_FF = 0.078

#: Energy of one sense-inverter evaluation, fJ (device-level constant folded
#: from the sense stage's input gate cap and output load).
_E_SENSE_FJ = 0.42

#: Per-bit share of wordline toggling energy, fJ.  The wordline is shared by
#: the whole row, so each bit carries only a small slice.
_E_WORDLINE_SHARE_FJ = 0.03

#: Time for the cross-coupled pair to flip during a write, seconds.
_T_FLIP_S = 20e-12

#: Fraction of the flip interval during which crowbar current flows.
_CROWBAR_DUTY = 0.9

#: Overhead of restoring a discharged bitline through the precharge network
#: and column mux after a read-0 (junction and short-circuit losses on top
#: of the ideal CV^2 swing).
_PRECHARGE_RESTORE_OVERHEAD = 1.27

#: Fraction of the write crowbar energy also burnt on a write-0 (the access
#: transistor briefly fights the pull-up while tipping the cell).
_WRITE0_CROWBAR_SHARE = 0.33


@dataclass(frozen=True)
class SramArrayGeometry:
    """Physical organisation of one SRAM subarray.

    ``rows`` sets the bitline length and therefore the bitline capacitance —
    the dominant term in every value-dependent energy component.  CNT-Cache
    style low-power arrays use short (64-row) subarrays.
    """

    rows: int = 64
    cols: int = 512
    wire_cap_per_cell_ff: float = _C_WIRE_PER_CELL_FF

    def __post_init__(self) -> None:
        if self.rows < 2:
            raise DeviceModelError(f"rows must be >= 2, got {self.rows}")
        if self.cols < 1:
            raise DeviceModelError(f"cols must be >= 1, got {self.cols}")
        if self.wire_cap_per_cell_ff <= 0:
            raise DeviceModelError("wire_cap_per_cell_ff must be positive")


@dataclass(frozen=True)
class Sram6TCell:
    """A 6T CNFET SRAM cell inside a subarray, with per-value energies.

    Parameters
    ----------
    access:
        The NFET access transistor (pass gate).
    pull_down:
        The cell's pull-down NFET — deliberately strong in CNFET designs,
        which is what makes overpowering it during a write-1 expensive.
    pull_up:
        The p-type load device.
    geometry:
        Subarray organisation (bitline length).
    """

    access: CNFETDevice = field(default_factory=lambda: CNFETDevice(n_tubes=4))
    pull_down: CNFETDevice = field(default_factory=lambda: CNFETDevice(n_tubes=6))
    pull_up: CNFETDevice = field(
        default_factory=lambda: CNFETDevice(n_tubes=2).as_pfet()
    )
    geometry: SramArrayGeometry = field(default_factory=SramArrayGeometry)

    def __post_init__(self) -> None:
        vdds = {self.access.vdd, self.pull_down.vdd, self.pull_up.vdd}
        if len(vdds) != 1:
            raise DeviceModelError(
                f"all devices in a cell must share one Vdd, got {sorted(vdds)}"
            )

    # ------------------------------------------------------------------ #
    # derived electrical quantities
    # ------------------------------------------------------------------ #
    @property
    def vdd(self) -> float:
        """Cell supply voltage in volts."""
        return self.access.vdd

    @property
    def bitline_capacitance_ff(self) -> float:
        """Total bitline capacitance seen by one column, fF."""
        per_cell = (
            self.geometry.wire_cap_per_cell_ff + self.access.junction_capacitance_ff
        )
        return per_cell * self.geometry.rows

    @property
    def cell_flip_energy_fj(self) -> float:
        """Energy to toggle the cross-coupled pair's internal nodes, fJ."""
        internal_cap = (
            self.pull_down.gate_capacitance_ff
            + self.pull_up.gate_capacitance_ff
            + self.pull_down.junction_capacitance_ff
            + self.pull_up.junction_capacitance_ff
        )
        # Both internal nodes swing rail to rail: C * Vdd^2 total.
        return internal_cap * self.vdd**2

    @property
    def crowbar_energy_fj(self) -> float:
        """Short-circuit energy burnt overpowering the pull-down on write-1."""
        i_on_amps = self.pull_down.on_current_ua * 1e-6
        joules = i_on_amps * self.vdd * _T_FLIP_S * _CROWBAR_DUTY
        return joules * 1e15

    # ------------------------------------------------------------------ #
    # the four per-bit energies (Table I of the paper)
    # ------------------------------------------------------------------ #
    @property
    def e_rd0_fj(self) -> float:
        """Energy of reading a stored '0': full bitline discharge + restore."""
        swing = self.bitline_capacitance_ff * self.vdd**2
        return swing * _PRECHARGE_RESTORE_OVERHEAD + _E_SENSE_FJ + _E_WORDLINE_SHARE_FJ

    @property
    def e_rd1_fj(self) -> float:
        """Energy of reading a stored '1': bitline stays high, sense only."""
        return _E_SENSE_FJ + _E_WORDLINE_SHARE_FJ

    @property
    def e_wr1_fj(self) -> float:
        """Energy of writing a '1': bitline charge + crowbar + cell flip."""
        bitline = self.bitline_capacitance_ff * self.vdd**2
        return (
            bitline
            + self.crowbar_energy_fj
            + self.cell_flip_energy_fj
            + _E_WORDLINE_SHARE_FJ
        )

    @property
    def e_wr0_fj(self) -> float:
        """Energy of writing a '0': sink the bitline and tip the cell."""
        # The write driver sinks the bitline to ground (cheap: the charge was
        # already paid for at precharge and is simply dumped); only the cell
        # flip and a sliver of driver/wordline energy are burnt here.
        return (
            self.cell_flip_energy_fj
            + _WRITE0_CROWBAR_SHARE * self.crowbar_energy_fj
            + _E_WORDLINE_SHARE_FJ
        )

    # ------------------------------------------------------------------ #
    # calibration diagnostics
    # ------------------------------------------------------------------ #
    @property
    def write_asymmetry(self) -> float:
        """``E_wr1 / E_wr0`` — the paper's abstract quotes ~10x."""
        return self.e_wr1_fj / self.e_wr0_fj

    @property
    def delta_balance(self) -> float:
        """``(E_rd0 - E_rd1) / (E_wr1 - E_wr0)`` — paper says "quite close" to 1."""
        return (self.e_rd0_fj - self.e_rd1_fj) / (self.e_wr1_fj - self.e_wr0_fj)

    def summary(self) -> dict[str, float]:
        """All four energies plus calibration diagnostics, as a dict."""
        return {
            "e_rd0_fj": self.e_rd0_fj,
            "e_rd1_fj": self.e_rd1_fj,
            "e_wr0_fj": self.e_wr0_fj,
            "e_wr1_fj": self.e_wr1_fj,
            "write_asymmetry": self.write_asymmetry,
            "delta_balance": self.delta_balance,
            "bitline_capacitance_ff": self.bitline_capacitance_ff,
            "vdd": self.vdd,
        }

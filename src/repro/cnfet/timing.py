"""CNFET SRAM access-timing model.

The paper's Fig. 1 discussion makes a timing claim this module
reconstructs: the adaptive encoder is "essentially a series of inverters
with 2-to-1 multiplexers" whose "simple structure has negligible influence
on the timing of the critical data path".

The model composes an RC delay chain from the same device parameters the
energy model uses:

* row decoder (a few gate stages driving the wordline),
* wordline rise across the row,
* bitline discharge through access + pull-down transistors (the dominant
  term; reading a '0' must discharge the full bitline),
* sense/output stage,
* and, for encoded schemes, the inverter + 2-to-1 mux of the codec plus
  (on writes) the direction-bit lookup that selects it.

All delays in picoseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cnfet.device import CNFETDevice
from repro.cnfet.sram import Sram6TCell

#: ln(2): RC-to-50%-swing conversion for a single pole.
_LN2 = math.log(2.0)

#: Effective fan-out-of-4 inverter delay multiplier for logic stages.
_FO4_STAGES_DECODER = 4.0
_FO4_STAGES_SENSE = 2.0

#: Stage count of the encoder datapath: one inverter + one 2-to-1 mux.
_FO4_STAGES_ENCODER = 1.6

#: Wire RC of the wordline across one cell pitch, ps (tiny, additive).
_WORDLINE_PS_PER_CELL = 0.012


class TimingModelError(ValueError):
    """Raised on invalid timing-model arguments."""


@dataclass(frozen=True)
class AccessTiming:
    """Breakdown of one SRAM access's latency, ps."""

    decoder_ps: float
    wordline_ps: float
    bitline_ps: float
    sense_ps: float
    encoder_ps: float = 0.0

    @property
    def total_ps(self) -> float:
        """End-to-end access latency."""
        return (
            self.decoder_ps
            + self.wordline_ps
            + self.bitline_ps
            + self.sense_ps
            + self.encoder_ps
        )

    @property
    def encoder_overhead(self) -> float:
        """Encoder share of the total latency (the paper: 'negligible')."""
        total = self.total_ps
        return self.encoder_ps / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat view for tables."""
        return {
            "decoder_ps": self.decoder_ps,
            "wordline_ps": self.wordline_ps,
            "bitline_ps": self.bitline_ps,
            "sense_ps": self.sense_ps,
            "encoder_ps": self.encoder_ps,
            "total_ps": self.total_ps,
            "encoder_overhead": self.encoder_overhead,
        }


@dataclass(frozen=True)
class SramTimingModel:
    """RC timing of a subarray built from one cell design."""

    cell: Sram6TCell = field(default_factory=Sram6TCell)

    def _fo4_ps(self) -> float:
        """Fan-out-of-4 delay of the technology's reference inverter."""
        reference = CNFETDevice(n_tubes=4, vdd=self.cell.vdd)
        load_ff = 4.0 * reference.gate_capacitance_ff
        resistance_kohm = reference.effective_resistance_kohm
        # kOhm x fF = ps.
        return _LN2 * resistance_kohm * load_ff

    @property
    def decoder_ps(self) -> float:
        """Row-decoder delay (gate stages scaling with row count)."""
        rows = self.cell.geometry.rows
        stages = _FO4_STAGES_DECODER + math.log2(rows) / 2.0
        return stages * self._fo4_ps()

    @property
    def wordline_ps(self) -> float:
        """Wordline flight time across the row."""
        return self.cell.geometry.cols * _WORDLINE_PS_PER_CELL

    @property
    def bitline_ps(self) -> float:
        """Bitline discharge through access + pull-down (read-0 path)."""
        path_kohm = (
            self.cell.access.effective_resistance_kohm
            + self.cell.pull_down.effective_resistance_kohm
        )
        return _LN2 * path_kohm * self.cell.bitline_capacitance_ff

    @property
    def sense_ps(self) -> float:
        """Sense/output stage."""
        return _FO4_STAGES_SENSE * self._fo4_ps()

    @property
    def encoder_ps(self) -> float:
        """Inverter + 2-to-1 mux of the adaptive encoding datapath."""
        return _FO4_STAGES_ENCODER * self._fo4_ps()

    def access(self, encoded: bool = False) -> AccessTiming:
        """Latency breakdown of one access, with or without the encoder."""
        return AccessTiming(
            decoder_ps=self.decoder_ps,
            wordline_ps=self.wordline_ps,
            bitline_ps=self.bitline_ps,
            sense_ps=self.sense_ps,
            encoder_ps=self.encoder_ps if encoded else 0.0,
        )

    def max_frequency_ghz(self, encoded: bool = False, margin: float = 0.3) -> float:
        """Cycle-limited frequency with a pipeline/setup margin."""
        if not 0.0 <= margin < 1.0:
            raise TimingModelError(f"margin must be in [0, 1), got {margin}")
        total_ps = self.access(encoded).total_ps / (1.0 - margin)
        return 1000.0 / total_ps

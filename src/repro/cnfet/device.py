"""Carbon-nanotube FET (CNFET) device model.

The CNT-Cache paper characterises its SRAM cells with a CNFET technology in
the style of the Stanford VS-CNFET model.  Without access to SPICE decks we
rebuild the *analytic* sub-model that the cache-level energy table actually
depends on: per-device gate/drain capacitance and on-current, as functions of
tube count, tube diameter, pitch and supply voltage.

The numbers below follow the commonly published 32 nm-class CNFET
parameters (CNT diameter ~1.5 nm, pitch ~6-8 nm, 3-8 tubes per device).
They are *not* fitted to any proprietary data; the cache-level model is
calibrated only against the qualitative facts stated in the paper's abstract
and Table I (see :mod:`repro.cnfet.sram`).

Units
-----
* lengths: nanometres (nm)
* capacitance: femtofarads (fF)
* voltage: volts (V)
* current: microamperes (uA)
* energy: femtojoules (fJ) — note fF x V^2 = fJ, which keeps the arithmetic
  unit-consistent throughout the package.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

#: Gate capacitance per unit tube length for a ~1.5 nm CNT under a high-k
#: gate stack, in fF/nm (approx. 3.8e-2 fF/um => 3.8e-5 fF/nm per tube).
_C_GATE_PER_NM_PER_TUBE = 3.8e-5

#: Parasitic drain/source junction capacitance per tube, fF.
_C_JUNCTION_PER_TUBE = 1.0e-4

#: On-current per tube at Vdd = 0.9 V for a ballistic ~1.5 nm CNT, uA.
_I_ON_PER_TUBE_UA = 18.0

#: Subthreshold-ish knee: current collapses quickly below threshold.
_DEFAULT_VTH = 0.29


class DeviceModelError(ValueError):
    """Raised when a CNFET device is constructed with invalid parameters."""


@dataclass(frozen=True)
class CNFETDevice:
    """Analytic model of one carbon-nanotube FET.

    Parameters
    ----------
    n_tubes:
        Number of parallel carbon nanotubes under the gate.  Drive current
        and capacitance both scale linearly with this.
    diameter_nm:
        Nanotube diameter.  Sets the bandgap and therefore threshold-ish
        behaviour; we fold it into a drive-strength factor.
    pitch_nm:
        Inter-tube pitch.  Affects gate-to-channel screening; tighter pitch
        reduces per-tube current slightly (charge screening).
    gate_length_nm:
        Physical gate length; linear in gate capacitance.
    vdd:
        Nominal supply voltage.
    vth:
        Threshold voltage.
    is_pfet:
        CNFETs are naturally ambipolar; doped p-type devices in this model
        carry a mild drive penalty relative to n-type.
    """

    n_tubes: int = 4
    diameter_nm: float = 1.5
    pitch_nm: float = 6.0
    gate_length_nm: float = 32.0
    vdd: float = 0.9
    vth: float = _DEFAULT_VTH
    is_pfet: bool = False

    def __post_init__(self) -> None:
        if self.n_tubes < 1:
            raise DeviceModelError(f"n_tubes must be >= 1, got {self.n_tubes}")
        if not 0.5 <= self.diameter_nm <= 3.0:
            raise DeviceModelError(
                f"diameter_nm must be within [0.5, 3.0] nm, got {self.diameter_nm}"
            )
        if self.pitch_nm < self.diameter_nm:
            raise DeviceModelError(
                "pitch_nm must be at least the tube diameter "
                f"({self.pitch_nm} < {self.diameter_nm})"
            )
        if self.gate_length_nm <= 0:
            raise DeviceModelError("gate_length_nm must be positive")
        if self.vdd <= 0:
            raise DeviceModelError("vdd must be positive")
        if not 0 < self.vth < self.vdd:
            raise DeviceModelError(
                f"vth must lie in (0, vdd) = (0, {self.vdd}), got {self.vth}"
            )

    # ------------------------------------------------------------------ #
    # capacitances
    # ------------------------------------------------------------------ #
    @property
    def gate_capacitance_ff(self) -> float:
        """Total gate capacitance in fF (scales with tubes and gate length)."""
        screening = self._screening_factor()
        return (
            _C_GATE_PER_NM_PER_TUBE
            * self.gate_length_nm
            * self.n_tubes
            * screening
        )

    @property
    def junction_capacitance_ff(self) -> float:
        """Drain/source junction parasitic capacitance in fF."""
        return _C_JUNCTION_PER_TUBE * self.n_tubes

    def _screening_factor(self) -> float:
        """Charge-screening de-rating of per-tube gate capacitance.

        Tubes packed closer than ~2x their diameter screen each other; the
        factor approaches ~0.7 at minimum pitch and 1.0 for sparse arrays.
        """
        relative_pitch = self.pitch_nm / self.diameter_nm
        return 1.0 - 0.3 * math.exp(-(relative_pitch - 1.0) / 2.0)

    # ------------------------------------------------------------------ #
    # drive
    # ------------------------------------------------------------------ #
    @property
    def on_current_ua(self) -> float:
        """Saturation on-current in microamperes at the device's Vdd."""
        overdrive = max(self.vdd - self.vth, 0.0)
        nominal_overdrive = 0.9 - _DEFAULT_VTH
        # Near-ballistic transport: current ~ linear in overdrive.
        scale = overdrive / nominal_overdrive
        diameter_scale = self.diameter_nm / 1.5
        pfet_penalty = 0.85 if self.is_pfet else 1.0
        return (
            _I_ON_PER_TUBE_UA
            * self.n_tubes
            * scale
            * diameter_scale
            * pfet_penalty
            * self._screening_factor()
        )

    @property
    def effective_resistance_kohm(self) -> float:
        """Switching-equivalent resistance, kOhm (Vdd / I_on, with margin)."""
        i_on = self.on_current_ua
        if i_on <= 0:
            return math.inf
        # uA and V: V / uA = MOhm; x1000 -> kOhm.  1.2x averaging factor for
        # the transition through the linear region.
        return 1.2 * self.vdd / i_on * 1000.0

    def switching_energy_fj(self, load_ff: float) -> float:
        """Energy to charge ``load_ff`` (fF) through this device to Vdd, fJ.

        Classic CV^2 dissipation: half stored, half burnt in the channel;
        a full charge/discharge cycle burns the whole CV^2.  We report the
        *per-transition* CV^2/2 value.
        """
        if load_ff < 0:
            raise DeviceModelError(f"load_ff must be >= 0, got {load_ff}")
        return 0.5 * load_ff * self.vdd**2

    # ------------------------------------------------------------------ #
    # derivation helpers
    # ------------------------------------------------------------------ #
    def with_vdd(self, vdd: float) -> "CNFETDevice":
        """A copy of this device operated at a different supply voltage."""
        return replace(self, vdd=vdd)

    def sized(self, n_tubes: int) -> "CNFETDevice":
        """A copy of this device with a different tube count."""
        return replace(self, n_tubes=n_tubes)

    def as_pfet(self) -> "CNFETDevice":
        """The p-type counterpart of this device."""
        return replace(self, is_pfet=True)

"""CNFET device and SRAM-cell energy models.

This package rebuilds the circuit-level substrate of the CNT-Cache paper:
the carbon-nanotube FET (CNFET) device model, a single-ended 6T SRAM cell
built from those devices, and the per-bit read/write energy table
(``Table I`` of the paper, referenced as ``tab:rw-analysis``) that the
adaptive-encoding algorithm consumes.

The public surface is:

* :class:`~repro.cnfet.device.CNFETDevice` — device geometry/electrical model.
* :class:`~repro.cnfet.sram.Sram6TCell` — cell-level energy derivation.
* :class:`~repro.cnfet.energy.BitEnergyModel` — the four per-bit energies
  ``E_rd0``, ``E_rd1``, ``E_wr0``, ``E_wr1`` (in femtojoules) plus helpers.
* :mod:`~repro.cnfet.corners` — process corners, supply scaling and the CMOS
  reference cell used in the Vdd-sweep experiment.

All energies in this package are expressed in **femtojoules (fJ)**.
"""

from repro.cnfet.corners import (
    CMOS_REFERENCE,
    Corner,
    cmos_reference_model,
    scale_to_corner,
    scale_to_vdd,
)
from repro.cnfet.device import CNFETDevice
from repro.cnfet.energy import BitEnergyModel, render_table1
from repro.cnfet.leakage import LeakageModel
from repro.cnfet.sram import Sram6TCell, SramArrayGeometry
from repro.cnfet.timing import AccessTiming, SramTimingModel

__all__ = [
    "CNFETDevice",
    "Sram6TCell",
    "SramArrayGeometry",
    "BitEnergyModel",
    "render_table1",
    "SramTimingModel",
    "AccessTiming",
    "LeakageModel",
    "Corner",
    "scale_to_corner",
    "scale_to_vdd",
    "cmos_reference_model",
    "CMOS_REFERENCE",
]

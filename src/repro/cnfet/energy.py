"""Per-bit energy model — the paper's Table I (``tab:rw-analysis``).

:class:`BitEnergyModel` is the single object the whole cache stack consumes:
the four per-bit energies ``E_rd0``, ``E_rd1``, ``E_wr0``, ``E_wr1`` (fJ).
Everything the adaptive-encoding algorithm decides — the read-intensive
threshold ``Th_rd`` of Eq. 3, the bit-count threshold table of Eq. 6, and
the final dynamic-energy accounting — is a function of these four numbers.

Two constructors matter:

* :meth:`BitEnergyModel.from_cell` derives the table from a physical
  :class:`~repro.cnfet.sram.Sram6TCell`.
* :meth:`BitEnergyModel.paper_table1` returns the pinned calibration used by
  every experiment in this repository, rounded from the default cell.  Using
  pinned values keeps all reported numbers stable even if the device model
  is refined later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cnfet.sram import Sram6TCell


class EnergyModelError(ValueError):
    """Raised when an energy model is constructed with invalid values."""


#: Constant energy of the mux/inverter encoder datapath per access, fJ
#: (the "series of inverters with 2-to-1 multiplexers" of Fig. 1).
ENCODER_LOGIC_FJ = 0.20

#: Constant energy of one predictor table lookup + compare, fJ
#: (Algorithm 1's per-window evaluation logic).
PREDICTOR_LOGIC_FJ = 1.00

#: Value-independent energy of one array activation, fJ: address decoder +
#: wordline drivers, tag compare, column mux, sense enable.  The paper's
#: Eq. 4/5 meter data bits only (no peripheral term); we keep a modest
#: CNFET-peripheral constant because a zero value is physically
#: indefensible.  This is the repository's single pinned calibration
#: constant: 1.0 pJ places the 15-workload suite average at 20.8% vs the
#: paper's 22.2% (see EXPERIMENTS.md, calibration section — set once,
#: never tuned per-experiment; a sensitivity ablation bench sweeps it).
PERIPHERAL_FJ_PER_ACCESS = 1000.0


@dataclass(frozen=True)
class BitEnergyModel:
    """The four per-bit SRAM access energies, in femtojoules.

    Invariants enforced at construction (they are what makes the paper's
    algorithm meaningful):

    * all four energies are positive;
    * reading '1' is cheaper than reading '0' (``e_rd1 < e_rd0``);
    * writing '0' is cheaper than writing '1' (``e_wr0 < e_wr1``).
    """

    e_rd0: float
    e_rd1: float
    e_wr0: float
    e_wr1: float

    def __post_init__(self) -> None:
        for name in ("e_rd0", "e_rd1", "e_wr0", "e_wr1"):
            value = getattr(self, name)
            if not value > 0:
                raise EnergyModelError(f"{name} must be positive, got {value}")
        if not self.e_rd1 < self.e_rd0:
            raise EnergyModelError(
                f"expected e_rd1 < e_rd0, got {self.e_rd1} >= {self.e_rd0}"
            )
        if not self.e_wr0 < self.e_wr1:
            raise EnergyModelError(
                f"expected e_wr0 < e_wr1, got {self.e_wr0} >= {self.e_wr1}"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_cell(cls, cell: "Sram6TCell") -> "BitEnergyModel":
        """Derive the table from a physical cell model."""
        return cls(
            e_rd0=cell.e_rd0_fj,
            e_rd1=cell.e_rd1_fj,
            e_wr0=cell.e_wr0_fj,
            e_wr1=cell.e_wr1_fj,
        )

    @classmethod
    def paper_table1(cls) -> "BitEnergyModel":
        """The pinned Table I calibration used across all experiments.

        Rounded from the default :class:`~repro.cnfet.sram.Sram6TCell`:
        write asymmetry ``E_wr1 / E_wr0 ~= 10`` (abstract: "almost 10X") and
        ``E_rd0 - E_rd1 ~= E_wr1 - E_wr0`` (Section III: "quite close", which
        puts ``Th_rd`` at roughly ``W/2``).
        """
        return cls(e_rd0=5.61, e_rd1=0.45, e_wr0=0.58, e_wr1=5.73)

    # ------------------------------------------------------------------ #
    # the deltas that drive the encoding decisions
    # ------------------------------------------------------------------ #
    @property
    def delta_read(self) -> float:
        """``E_rd0 - E_rd1``: per-bit saving of reading '1' instead of '0'."""
        return self.e_rd0 - self.e_rd1

    @property
    def delta_write(self) -> float:
        """``E_wr1 - E_wr0``: per-bit saving of writing '0' instead of '1'."""
        return self.e_wr1 - self.e_wr0

    @property
    def write_asymmetry(self) -> float:
        """``E_wr1 / E_wr0`` ratio."""
        return self.e_wr1 / self.e_wr0

    # ------------------------------------------------------------------ #
    # aggregate energies
    # ------------------------------------------------------------------ #
    def read_energy(self, ones: int, zeros: int) -> float:
        """Energy (fJ) of reading a word with ``ones`` 1-bits, ``zeros`` 0-bits."""
        _check_counts(ones, zeros)
        return ones * self.e_rd1 + zeros * self.e_rd0

    def write_energy(self, ones: int, zeros: int) -> float:
        """Energy (fJ) of writing a word with ``ones`` 1-bits, ``zeros`` 0-bits."""
        _check_counts(ones, zeros)
        return ones * self.e_wr1 + zeros * self.e_wr0

    def access_energy(self, is_write: bool, ones: int, zeros: int) -> float:
        """Energy of one access of either kind."""
        if is_write:
            return self.write_energy(ones, zeros)
        return self.read_energy(ones, zeros)

    def encode_switch_energy(self, ones_after: int, zeros_after: int) -> float:
        """Energy of rewriting a line with its re-encoded contents.

        This is the paper's ``E_encode = N1 x E_wr0 + (L - N1) x E_wr1``
        where ``N1``/``L - N1`` are the 1/0 populations of the *new* data —
        i.e. simply the write energy of the re-encoded line.
        """
        return self.write_energy(ones_after, zeros_after)

    # ------------------------------------------------------------------ #
    # serialization (exec-engine job fingerprints and result cache)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, float]:
        """JSON-ready snapshot; inverse of :meth:`from_dict`."""
        return {
            "e_rd0": self.e_rd0,
            "e_rd1": self.e_rd1,
            "e_wr0": self.e_wr0,
            "e_wr1": self.e_wr1,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BitEnergyModel":
        """Rebuild from a :meth:`to_dict` snapshot (strict keys)."""
        expected = {"e_rd0", "e_rd1", "e_wr0", "e_wr1"}
        if not isinstance(payload, dict) or set(payload) != expected:
            raise EnergyModelError(
                f"energy-model payload must have keys {sorted(expected)}, "
                f"got {payload!r}"
            )
        return cls(**{name: float(payload[name]) for name in expected})

    def scaled(self, factor: float) -> "BitEnergyModel":
        """All four energies multiplied by ``factor`` (corner/Vdd scaling)."""
        if factor <= 0:
            raise EnergyModelError(f"scale factor must be positive, got {factor}")
        return BitEnergyModel(
            e_rd0=self.e_rd0 * factor,
            e_rd1=self.e_rd1 * factor,
            e_wr0=self.e_wr0 * factor,
            e_wr1=self.e_wr1 * factor,
        )


def _check_counts(ones: int, zeros: int) -> None:
    if ones < 0 or zeros < 0:
        raise EnergyModelError(
            f"bit counts must be non-negative, got ones={ones} zeros={zeros}"
        )


def render_table1(model: BitEnergyModel | None = None) -> str:
    """Render the paper's Table I as an aligned text table.

    Used by the Table I benchmark and the quickstart example.
    """
    if model is None:
        model = BitEnergyModel.paper_table1()
    rows = [
        ("read  '0'", model.e_rd0),
        ("read  '1'", model.e_rd1),
        ("write '0'", model.e_wr0),
        ("write '1'", model.e_wr1),
    ]
    lines = [
        "Table I: CNFET SRAM per-bit access energy (fJ)",
        "-" * 46,
        f"{'operation':<12} {'energy (fJ)':>12}",
    ]
    lines.extend(f"{name:<12} {value:>12.2f}" for name, value in rows)
    lines.append("-" * 46)
    lines.append(f"write asymmetry E_wr1/E_wr0 = {model.write_asymmetry:.1f}x")
    lines.append(
        "delta balance (E_rd0-E_rd1)/(E_wr1-E_wr0) = "
        f"{model.delta_read / model.delta_write:.2f}"
    )
    return "\n".join(lines)
